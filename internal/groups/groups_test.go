package groups

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/obs"
)

// must unwraps an encoded payload; an encode error on a well-formed
// envelope in a test is a bug.
func must(payload []byte, err error) []byte {
	if err != nil {
		panic(err)
	}
	return payload
}

func regCfg(seq uint64, members ...model.ProcessID) model.Configuration {
	return model.Configuration{ID: model.RegularID(seq, members[0]), Members: model.NewProcessSet(members...)}
}

func transCfg(next, prev model.Configuration, members ...model.ProcessID) model.Configuration {
	return model.Configuration{ID: model.TransitionalID(next.ID, prev.ID), Members: model.NewProcessSet(members...)}
}

// bus replays a payload to every mux in total order. Data deliveries
// arrive through each mux's sink and are folded into the same event
// stream control events use, so tests see one ordered record per
// process.
type bus struct {
	muxes  map[model.ProcessID]*Mux
	events map[model.ProcessID][]Event
}

// busSink routes one mux's data deliveries into the bus record.
type busSink struct {
	b  *bus
	id model.ProcessID
}

func (s busSink) OnGroupData(d Deliver) {
	s.b.events[s.id] = append(s.b.events[s.id], d)
}

func newBus(ids ...model.ProcessID) *bus {
	b := &bus{
		muxes:  make(map[model.ProcessID]*Mux),
		events: make(map[model.ProcessID][]Event),
	}
	for _, id := range ids {
		m := New(id)
		m.SetSink(busSink{b, id})
		b.muxes[id] = m
	}
	return b
}

// newBusFrom carves a sub-bus reusing a subset of muxes (simulating the
// component that retains those processes after a partition).
func newBusFrom(old *bus, ids ...model.ProcessID) *bus {
	b := &bus{
		muxes:  make(map[model.ProcessID]*Mux),
		events: make(map[model.ProcessID][]Event),
	}
	for _, id := range ids {
		m := old.muxes[id]
		m.SetSink(busSink{b, id})
		b.muxes[id] = m
	}
	return b
}

func (b *bus) broadcast(sender model.ProcessID, payload []byte) {
	if payload == nil {
		return
	}
	for id, m := range b.muxes {
		b.events[id] = append(b.events[id], m.OnDeliver(sender, payload)...)
	}
}

func (b *bus) config(cfg model.Configuration) {
	type ann struct {
		id      model.ProcessID
		payload []byte
	}
	var anns []ann
	for id, m := range b.muxes {
		a, evs, _ := m.OnConfig(cfg)
		b.events[id] = append(b.events[id], evs...)
		anns = append(anns, ann{id, a})
	}
	for _, a := range anns {
		b.broadcast(a.id, a.payload)
	}
}

func deliveries(evs []Event) []Deliver {
	var out []Deliver
	for _, e := range evs {
		if d, ok := e.(Deliver); ok {
			out = append(out, d)
		}
	}
	return out
}

func lastView(evs []Event, group string) *ViewChange {
	var out *ViewChange
	for _, e := range evs {
		if v, ok := e.(ViewChange); ok && v.Group == group {
			v := v
			out = &v
		}
	}
	return out
}

func TestJoinCreatesConsistentViews(t *testing.T) {
	b := newBus("a", "b", "c")
	b.config(regCfg(1, "a", "b", "c"))
	b.broadcast("a", must(b.muxes["a"].Join("chat")))
	b.broadcast("b", must(b.muxes["b"].Join("chat")))

	for _, id := range []model.ProcessID{"a", "b"} {
		v := lastView(b.events[id], "chat")
		if v == nil || !v.Members.Equal(model.NewProcessSet("a", "b")) {
			t.Fatalf("%s view %+v, want {a,b}", id, v)
		}
	}
	// c never joined: it sees no view events for chat.
	if v := lastView(b.events["c"], "chat"); v != nil {
		t.Fatalf("non-member c saw view %+v", v)
	}
}

func TestDataOnlyToMembers(t *testing.T) {
	b := newBus("a", "b", "c")
	b.config(regCfg(1, "a", "b", "c"))
	b.broadcast("a", must(b.muxes["a"].Join("chat")))
	b.broadcast("b", must(b.muxes["b"].Join("chat")))
	b.broadcast("a", must(b.muxes["a"].Send("chat", []byte("hi"))))

	for _, id := range []model.ProcessID{"a", "b"} {
		ds := deliveries(b.events[id])
		if len(ds) != 1 || string(ds[0].Payload) != "hi" || ds[0].Group != "chat" {
			t.Fatalf("%s deliveries %+v", id, ds)
		}
		if ds[0].Sender != "a" || ds[0].Client != 0 {
			t.Fatalf("%s delivery sender/client %+v", id, ds[0])
		}
	}
	if ds := deliveries(b.events["c"]); len(ds) != 0 {
		t.Fatalf("non-member c received %+v", ds)
	}
	// The non-member dropped via the header peek, without decoding.
	if f := b.muxes["c"].Filtered(); f != 1 {
		t.Fatalf("c filtered %d, want 1", f)
	}
	if f := b.muxes["a"].Filtered(); f != 0 {
		t.Fatalf("member a filtered %d, want 0", f)
	}
}

func TestLeaveShrinksView(t *testing.T) {
	b := newBus("a", "b")
	b.config(regCfg(1, "a", "b"))
	b.broadcast("a", must(b.muxes["a"].Join("g")))
	b.broadcast("b", must(b.muxes["b"].Join("g")))
	b.broadcast("b", must(b.muxes["b"].Leave("g")))

	v := lastView(b.events["a"], "g")
	if v == nil || !v.Members.Equal(model.NewProcessSet("a")) {
		t.Fatalf("view after leave %+v, want {a}", v)
	}
	if b.muxes["b"].Member("g") {
		t.Fatal("b should no longer be a member")
	}
	// Data no longer reaches b.
	b.broadcast("a", must(b.muxes["a"].Send("g", []byte("x"))))
	if ds := deliveries(b.events["b"]); len(ds) != 0 {
		t.Fatalf("left member received %+v", ds)
	}
}

func TestConfigChangeReannounces(t *testing.T) {
	b := newBus("a", "b")
	b.config(regCfg(1, "a", "b"))
	b.broadcast("a", must(b.muxes["a"].Join("g")))
	b.broadcast("b", must(b.muxes["b"].Join("g")))

	// New configuration: table resets, announcements rebuild it.
	b.config(regCfg(2, "a", "b"))
	for _, id := range []model.ProcessID{"a", "b"} {
		v := lastView(b.events[id], "g")
		if v == nil || !v.Members.Equal(model.NewProcessSet("a", "b")) {
			t.Fatalf("%s post-reconfig view %+v, want {a,b}", id, v)
		}
		if v.Config != model.RegularID(2, "a") {
			t.Fatalf("%s view config %v, want new configuration", id, v.Config)
		}
	}
}

func TestTransitionalConfigEmitsShrunkenViews(t *testing.T) {
	b := newBus("a", "b", "c")
	old := regCfg(1, "a", "b", "c")
	b.config(old)
	for _, id := range []model.ProcessID{"a", "b", "c"} {
		b.broadcast(id, must(b.muxes[id].Join("g")))
	}
	// c partitions away: the {a,b} side sees the transitional
	// configuration and the group view shrinks with it, before the new
	// regular configuration installs.
	next := regCfg(2, "a", "b")
	ab := newBusFrom(b, "a", "b")
	ab.config(transCfg(next, old, "a", "b"))
	for _, id := range []model.ProcessID{"a", "b"} {
		v := lastView(ab.events[id], "g")
		if v == nil || !v.Members.Equal(model.NewProcessSet("a", "b")) {
			t.Fatalf("%s transitional view %+v, want {a,b}", id, v)
		}
		if !v.Config.IsTransitional() {
			t.Fatalf("%s shrunken view tagged %v, want transitional", id, v.Config)
		}
	}
	// Old-epoch GroupIDs stay valid: a straggler data message from the
	// old configuration still delivers in the transitional one.
	ab.broadcast("a", must(ab.muxes["a"].Send("g", []byte("remainder"))))
	if ds := deliveries(ab.events["b"]); len(ds) != 1 || string(ds[0].Payload) != "remainder" {
		t.Fatalf("transitional remainder deliveries %+v", deliveries(ab.events["b"]))
	}
}

func TestPartitionShrinksGroupViews(t *testing.T) {
	b := newBus("a", "b", "c")
	b.config(regCfg(1, "a", "b", "c"))
	for _, id := range []model.ProcessID{"a", "b", "c"} {
		b.broadcast(id, must(b.muxes[id].Join("g")))
	}
	// a partitions away: the {b,c} side installs a new configuration;
	// only b and c announce there.
	bc := newBusFrom(b, "b", "c")
	bc.config(regCfg(2, "b", "c"))
	v := lastView(bc.events["b"], "g")
	if v == nil || !v.Members.Equal(model.NewProcessSet("b", "c")) {
		t.Fatalf("partitioned view %+v, want {b,c}", v)
	}
}

func TestViewsIdenticalAcrossMembers(t *testing.T) {
	b := newBus("a", "b", "c", "d")
	b.config(regCfg(1, "a", "b", "c", "d"))
	joins := []model.ProcessID{"a", "c", "d"}
	for _, id := range joins {
		b.broadcast(id, must(b.muxes[id].Join("g")))
	}
	b.broadcast("c", must(b.muxes["c"].Leave("g")))
	want := model.NewProcessSet("a", "d")
	for _, id := range []model.ProcessID{"a", "d"} {
		v := lastView(b.events[id], "g")
		if v == nil || !v.Members.Equal(want) {
			t.Fatalf("%s view %+v, want %v", id, v, want)
		}
	}
}

func TestSendBeforeInternFallsBackToName(t *testing.T) {
	b := newBus("a", "b")
	b.config(regCfg(1, "a", "b"))
	// Nobody has joined "fresh": Send cannot resolve an ID and must fall
	// back to the by-name envelope (interning locally would diverge from
	// the total order).
	payload := must(b.muxes["a"].Send("fresh", []byte("early")))
	if Kind(payload[0]) != KindDataName {
		t.Fatalf("unresolved send kind %v, want dataName", Kind(payload[0]))
	}
	b.broadcast("a", payload)
	// No member yet: nobody delivers, but every process interned the
	// name identically from the delivered message.
	for _, id := range []model.ProcessID{"a", "b"} {
		if ds := deliveries(b.events[id]); len(ds) != 0 {
			t.Fatalf("%s delivered %+v before any join", id, ds)
		}
		if _, ok := b.muxes[id].Resolve("fresh"); !ok {
			t.Fatalf("%s did not intern the name from the data message", id)
		}
	}
	if fa, fb := b.muxes["a"].Symbols().Fingerprint(), b.muxes["b"].Symbols().Fingerprint(); fa != fb {
		t.Fatalf("symbol tables diverged: %x vs %x", fa, fb)
	}
	// After the join delivers, the same name resolves and data flows as
	// a dense-ID envelope.
	b.broadcast("b", must(b.muxes["b"].Join("fresh")))
	payload = must(b.muxes["a"].Send("fresh", []byte("later")))
	if Kind(payload[0]) != KindData {
		t.Fatalf("resolved send kind %v, want data", Kind(payload[0]))
	}
	b.broadcast("a", payload)
	if ds := deliveries(b.events["b"]); len(ds) != 1 || string(ds[0].Payload) != "later" {
		t.Fatalf("b deliveries %+v", deliveries(b.events["b"]))
	}
}

func TestClientMultiplexing(t *testing.T) {
	b := newBus("a", "b")
	b.config(regCfg(1, "a", "b"))
	for _, m := range b.muxes {
		m.RetainQueues(true)
	}
	// Clients 1 and 2 live on a; client 3 on b. All subscribe to "m".
	b.broadcast("a", must(b.muxes["a"].ClientJoin(1, "m")))
	b.broadcast("a", must(b.muxes["a"].ClientJoin(2, "m")))
	b.broadcast("b", must(b.muxes["b"].ClientJoin(3, "m")))

	v := lastView(b.events["a"], "m")
	if v == nil || !v.Members.Equal(model.NewProcessSet("a", "b")) || v.Clients != 3 {
		t.Fatalf("client view %+v, want hosts {a,b} clients 3", v)
	}

	// Client 3 sends; every subscribed client's queue receives it, and
	// the delivery records the sending endpoint.
	b.broadcast("b", must(b.muxes["b"].ClientSend(3, "m", []byte("hello"))))
	for _, c := range []ClientID{1, 2} {
		q := b.muxes["a"].ClientQueue(c)
		if len(q) != 1 || string(q[0].Payload) != "hello" || q[0].Sender != "b" || q[0].Client != 3 {
			t.Fatalf("client %d queue %+v", c, q)
		}
	}
	if q := b.muxes["b"].ClientQueue(3); len(q) != 1 {
		t.Fatalf("sender's own client queue %+v", q)
	}
	if n := b.muxes["a"].ClientDelivered(); n != 2 {
		t.Fatalf("a client deliveries %d, want 2", n)
	}

	// Client 1 leaves: only client 2 receives the next message.
	b.broadcast("a", must(b.muxes["a"].ClientLeave(1, "m")))
	b.broadcast("b", must(b.muxes["b"].ClientSend(3, "m", []byte("again"))))
	if n := b.muxes["a"].ClientDeliveredFor(1); n != 1 {
		t.Fatalf("left client deliveries %d, want 1", n)
	}
	if n := b.muxes["a"].ClientDeliveredFor(2); n != 2 {
		t.Fatalf("remaining client deliveries %d, want 2", n)
	}
	v = lastView(b.events["a"], "m")
	if v == nil || v.Clients != 2 {
		t.Fatalf("post-leave view %+v, want 2 clients", v)
	}
}

func TestClientOpsBatchAndDedup(t *testing.T) {
	m := New("a")
	m.OnConfig(regCfg(1, "a"))
	// A duplicate join is deduplicated at the source: no payload, no
	// chance of remote refcount drift.
	p1 := must(m.ClientJoin(7, "g"))
	if p1 == nil {
		t.Fatal("first client join must produce a payload")
	}
	if p, err := m.ClientJoin(7, "g"); err != nil || p != nil {
		t.Fatalf("duplicate client join produced %v (%v)", p, err)
	}
	// Batches dedup the same way and report how many ops survived.
	ops := []ClientOp{
		{Client: 8, Group: "g"},
		{Client: 8, Group: "g"}, // duplicate inside the batch
		{Client: 9, Group: "h"},
		{Client: 7, Group: "g"}, // already subscribed above
	}
	payload, n, err := m.ClientOpsPayload(ops)
	if err != nil || n != 2 {
		t.Fatalf("batch kept %d ops (%v), want 2", n, err)
	}
	env, err := Decode(payload)
	if err != nil || len(env.Ops) != 2 {
		t.Fatalf("batch decoded %+v (%v)", env, err)
	}
	// Client 0 is reserved.
	if _, err := m.ClientJoin(0, "g"); err == nil {
		t.Fatal("client 0 must be rejected")
	}
}

func TestAnnounceCarriesClientSubscriptions(t *testing.T) {
	b := newBus("a", "b")
	b.config(regCfg(1, "a", "b"))
	b.broadcast("a", must(b.muxes["a"].ClientJoin(4, "g")))
	b.broadcast("b", must(b.muxes["b"].Join("g")))

	// Reconfiguration: the client subscription survives through a's
	// announce, rebuilding the same view in the new epoch.
	b.config(regCfg(2, "a", "b"))
	for _, id := range []model.ProcessID{"a", "b"} {
		v := lastView(b.events[id], "g")
		if v == nil || !v.Members.Equal(model.NewProcessSet("a", "b")) || v.Clients != 1 {
			t.Fatalf("%s post-reconfig view %+v, want hosts {a,b} clients 1", id, v)
		}
	}
	// And data still fans out to the client.
	b.broadcast("b", must(b.muxes["b"].Send("g", []byte("x"))))
	if n := b.muxes["a"].ClientDeliveredFor(4); n != 1 {
		t.Fatalf("client deliveries after reconfig %d, want 1", n)
	}
}

func TestFilteredDropObserved(t *testing.T) {
	met := obs.New("c", nil)
	m := New("c")
	m.SetMetrics(met)
	m.OnConfig(regCfg(1, "a", "c"))
	// A data message for an unknown GroupID: dropped on the header peek.
	m.OnDeliver("a", appendData(nil, 0, 42, []byte("x")))
	if m.Filtered() != 1 {
		t.Fatalf("filtered %d, want 1", m.Filtered())
	}
	if got := met.Counter(obs.CGroupsFiltered); got != 1 {
		t.Fatalf("groups_filtered_total %d, want 1", got)
	}
}

func TestGarbageAndUnknownKind(t *testing.T) {
	m := New("a")
	m.OnConfig(regCfg(1, "a"))
	if evs := m.OnDeliver("a", []byte{0xff, 0x01, 0x02}); evs != nil {
		t.Fatalf("garbage produced %v", evs)
	}
	if evs := m.OnDeliver("a", nil); evs != nil {
		t.Fatalf("empty payload produced %v", evs)
	}
	if m.Malformed() != 2 {
		t.Fatalf("malformed %d, want 2", m.Malformed())
	}
	if _, err := Decode([]byte{byte(KindJoin)}); err == nil {
		t.Fatal("truncated join must not decode")
	}
	if _, err := Encode(Envelope{Kind: Kind(200)}); err == nil {
		t.Fatal("unknown kind must not encode")
	}
}

func TestGroupsSorted(t *testing.T) {
	m := New("a")
	m.Join("zebra")
	m.Join("alpha")
	got := m.Groups()
	if fmt.Sprint(got) != "[alpha zebra]" {
		t.Fatalf("Groups() = %v", got)
	}
}

func TestAnnounceOnlyWhenSubscribed(t *testing.T) {
	m := New("a")
	ann, _, _ := m.OnConfig(regCfg(1, "a"))
	if ann != nil {
		t.Fatal("no subscriptions: no announcement")
	}
	m.Join("g")
	ann, _, _ = m.OnConfig(regCfg(2, "a"))
	if ann == nil {
		t.Fatal("subscribed process must announce on reconfiguration")
	}
	env, err := Decode(ann)
	if err != nil || env.Kind != KindAnnounce || len(env.Groups) != 1 {
		t.Fatalf("announcement %+v (%v)", env, err)
	}
}

// TestLegacyDifferential replays a seeded random process-level workload
// through the rewritten Mux and the preserved JSON LegacyMux and
// requires identical member views and deliveries: the rewrite changes
// the wire format and the data structures, not the semantics.
func TestLegacyDifferential(t *testing.T) {
	procs := []model.ProcessID{"a", "b", "c", "d"}
	groupsNames := []string{"g0", "g1", "g2"}
	rng := rand.New(rand.NewSource(42))

	muxes := make(map[model.ProcessID]*Mux)
	legacy := make(map[model.ProcessID]*LegacyMux)
	delivNew := make(map[model.ProcessID][]string)
	delivOld := make(map[model.ProcessID][]string)
	for _, p := range procs {
		p := p
		m := New(p)
		m.SetSink(sinkFunc(func(d Deliver) {
			delivNew[p] = append(delivNew[p], d.Group+"/"+string(d.Sender)+"/"+string(d.Payload))
		}))
		muxes[p] = m
		legacy[p] = NewLegacy(p)
	}

	applyCfg := func(cfg model.Configuration) {
		// Two phases, as the transport guarantees: the configuration
		// change delivers at every process before any announce sent in
		// the new configuration does.
		annsN := make(map[model.ProcessID][]byte)
		annsL := make(map[model.ProcessID][]byte)
		for _, p := range procs {
			annsN[p], _, _ = muxes[p].OnConfig(cfg)
			annsL[p], _, _ = legacy[p].OnConfig(cfg)
		}
		for _, p := range procs {
			for _, q := range procs {
				if annsN[p] != nil {
					muxes[q].OnDeliver(p, annsN[p])
				}
				if annsL[p] != nil {
					for _, e := range legacy[q].OnDeliver(p, annsL[p]) {
						if d, ok := e.(Deliver); ok {
							delivOld[q] = append(delivOld[q], d.Group+"/"+string(d.Sender)+"/"+string(d.Payload))
						}
					}
				}
			}
		}
	}
	broadcast := func(sender model.ProcessID, pn, pl []byte) {
		for _, q := range procs {
			if pn != nil {
				muxes[q].OnDeliver(sender, pn)
			}
			if pl != nil {
				for _, e := range legacy[q].OnDeliver(sender, pl) {
					if d, ok := e.(Deliver); ok {
						delivOld[q] = append(delivOld[q], d.Group+"/"+string(d.Sender)+"/"+string(d.Payload))
					}
				}
			}
		}
	}

	applyCfg(regCfg(1, procs...))
	for step := 0; step < 400; step++ {
		p := procs[rng.Intn(len(procs))]
		g := groupsNames[rng.Intn(len(groupsNames))]
		switch rng.Intn(4) {
		case 0:
			broadcast(p, must(muxes[p].Join(g)), must(legacy[p].Join(g)))
		case 1:
			broadcast(p, must(muxes[p].Leave(g)), must(legacy[p].Leave(g)))
		case 2:
			data := []byte(fmt.Sprintf("m%d", step))
			broadcast(p, must(muxes[p].Send(g, data)), must(legacy[p].Send(g, data)))
		case 3:
			applyCfg(regCfg(uint64(step+2), procs...))
		}
	}

	for _, p := range procs {
		if fmt.Sprint(delivNew[p]) != fmt.Sprint(delivOld[p]) {
			t.Fatalf("%s deliveries diverged:\nnew %v\nold %v", p, delivNew[p], delivOld[p])
		}
		for _, g := range groupsNames {
			vn, vo := muxes[p].View(g), legacy[p].View(g)
			if !vn.Members.Equal(vo.Members) {
				t.Fatalf("%s view of %s diverged: new %v old %v", p, g, vn.Members, vo.Members)
			}
		}
	}
}

// sinkFunc adapts a function to the Sink interface.
type sinkFunc func(Deliver)

func (f sinkFunc) OnGroupData(d Deliver) { f(d) }

// Legacy JSON group layer, preserved verbatim (modulo renames) from the
// pre-binary-codec implementation. It serves two purposes: the JSON
// baseline leg of the groups benchmark (EXPERIMENTS.md G1 measures the
// binary layer against exactly this code in the same rig), and a
// differential oracle for the process-level semantics the rewrite must
// preserve (joins/leaves/announces/data at process granularity —
// LegacyMux predates lightweight clients).
package groups

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/model"
)

// LegacyKind tags legacy group-layer payloads.
type LegacyKind string

const (
	// LegacyJoin subscribes the sender to a group.
	LegacyJoin LegacyKind = "join"
	// LegacyLeave unsubscribes the sender.
	LegacyLeave LegacyKind = "leave"
	// LegacyAnnounce re-declares the sender's full subscription set
	// (sent on configuration changes).
	LegacyAnnounce LegacyKind = "announce"
	// LegacyData is an application message addressed to a group.
	LegacyData LegacyKind = "data"
)

// LegacyEnvelope is the legacy JSON wire format.
type LegacyEnvelope struct {
	Kind   LegacyKind `json:"kind"`
	Group  string     `json:"group,omitempty"`
	Groups []string   `json:"groups,omitempty"` // LegacyAnnounce
	Data   []byte     `json:"data,omitempty"`   // LegacyData
}

// EncodeLegacy serialises a legacy envelope. Marshal failures are
// propagated, not panicked.
func EncodeLegacy(e LegacyEnvelope) ([]byte, error) {
	b, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("groups: marshal: %w", err)
	}
	return b, nil
}

// DecodeLegacy parses a legacy envelope.
func DecodeLegacy(b []byte) (LegacyEnvelope, error) {
	var e LegacyEnvelope
	if err := json.Unmarshal(b, &e); err != nil {
		return LegacyEnvelope{}, fmt.Errorf("groups: unmarshal: %w", err)
	}
	return e, nil
}

// LegacyMux is the pre-rewrite per-process group multiplexer: JSON
// envelopes, string-keyed tables, full decode at every process, views
// rebuilt by filtering on every change.
type LegacyMux struct {
	self model.ProcessID
	// mine is this process's own subscription set (survives
	// configuration changes; the application's intent).
	mine map[string]bool
	// subs is the replicated subscription table for the current
	// configuration: group -> subscribers heard from.
	subs map[string]map[model.ProcessID]bool
	// cfg is the current regular configuration.
	cfg model.Configuration
}

// NewLegacy creates a legacy multiplexer.
func NewLegacy(self model.ProcessID) *LegacyMux {
	return &LegacyMux{
		self: self,
		mine: make(map[string]bool),
		subs: make(map[string]map[model.ProcessID]bool),
	}
}

// Join returns the payload to broadcast (safe) to subscribe this
// process to a group. Idempotent at the table level.
func (m *LegacyMux) Join(group string) ([]byte, error) {
	m.mine[group] = true
	return EncodeLegacy(LegacyEnvelope{Kind: LegacyJoin, Group: group})
}

// Leave returns the payload to broadcast (safe) to unsubscribe.
func (m *LegacyMux) Leave(group string) ([]byte, error) {
	delete(m.mine, group)
	return EncodeLegacy(LegacyEnvelope{Kind: LegacyLeave, Group: group})
}

// Send returns the payload to broadcast carrying data to a group.
func (m *LegacyMux) Send(group string, data []byte) ([]byte, error) {
	//lint:allow wireown the envelope is serialised to JSON before this call returns; the alias never escapes
	return EncodeLegacy(LegacyEnvelope{Kind: LegacyData, Group: group, Data: data})
}

// Member reports whether this process currently belongs to the group.
func (m *LegacyMux) Member(group string) bool { return m.mine[group] }

// Groups returns this process's subscriptions, sorted.
func (m *LegacyMux) Groups() []string {
	out := make([]string, 0, len(m.mine))
	for g := range m.mine {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// View returns the current view of a group.
func (m *LegacyMux) View(group string) ViewChange {
	return m.view(group)
}

func (m *LegacyMux) view(group string) ViewChange {
	var ids []model.ProcessID
	for p := range m.subs[group] {
		if m.cfg.Members.Contains(p) {
			ids = append(ids, p)
		}
	}
	return ViewChange{
		Group:   group,
		Members: model.NewProcessSet(ids...),
		Config:  m.cfg.ID,
	}
}

// OnConfig ingests a transport configuration change. For a regular
// configuration it resets the table and returns the announcement
// payload to broadcast (safe). The legacy implementation returned no
// view events here; the rewritten Mux fixes that contract.
func (m *LegacyMux) OnConfig(cfg model.Configuration) ([]byte, []Event, error) {
	if cfg.ID.IsTransitional() {
		return nil, nil, nil
	}
	m.cfg = cfg
	m.subs = make(map[string]map[model.ProcessID]bool)
	var announce []byte
	if len(m.mine) > 0 {
		var err error
		announce, err = EncodeLegacy(LegacyEnvelope{Kind: LegacyAnnounce, Groups: m.Groups()})
		if err != nil {
			return nil, nil, err
		}
	}
	return announce, nil, nil
}

// OnDeliver ingests a group-layer payload delivered by the transport
// (in total order) and returns the resulting events at this process.
func (m *LegacyMux) OnDeliver(sender model.ProcessID, payload []byte) []Event {
	env, err := DecodeLegacy(payload)
	if err != nil {
		return nil
	}
	switch env.Kind {
	case LegacyJoin:
		return m.subscribe(sender, env.Group)
	case LegacyLeave:
		return m.unsubscribe(sender, env.Group)
	case LegacyAnnounce:
		var out []Event
		for _, g := range env.Groups {
			out = append(out, m.subscribe(sender, g)...)
		}
		return out
	case LegacyData:
		if !m.mine[env.Group] {
			return nil
		}
		return []Event{Deliver{Group: env.Group, Sender: sender, Payload: env.Data}}
	default:
		return nil
	}
}

// subscribe records a subscription and emits a view change if the
// visible membership changed and this process cares about the group.
func (m *LegacyMux) subscribe(p model.ProcessID, group string) []Event {
	if m.subs[group] == nil {
		m.subs[group] = make(map[model.ProcessID]bool)
	}
	if m.subs[group][p] {
		return nil
	}
	m.subs[group][p] = true
	if !m.mine[group] && p != m.self {
		return nil
	}
	if !m.cfg.Members.Contains(p) {
		return nil
	}
	return []Event{m.view(group)}
}

// unsubscribe removes a subscription, emitting a view change likewise.
func (m *LegacyMux) unsubscribe(p model.ProcessID, group string) []Event {
	if m.subs[group] == nil || !m.subs[group][p] {
		return nil
	}
	delete(m.subs[group], p)
	if p == m.self {
		delete(m.mine, group)
	}
	if !m.mine[group] && p != m.self {
		return nil
	}
	if !m.cfg.Members.Contains(p) {
		return nil
	}
	return []Event{m.view(group)}
}

// Replicated group-name interning.
//
// Group names are strings chosen by applications; the routing fast
// path wants dense integers. A SymbolTable maps between the two. The
// table is *replicated state*: every process builds it exclusively
// from name-carrying messages in the safe total order (joins, leaves,
// announces, client ops, data-by-name), interning each previously
// unseen name as the next dense GroupID. Because every process
// observes the same messages in the same order, every process assigns
// the same GroupID to the same name — without any coordination beyond
// the total order the ring already provides.
//
// IDs are scoped to one configuration epoch. On a regular
// configuration install the table resets and is rebuilt from the
// announces that follow; during a transitional configuration the table
// is retained, because the transitional configuration exists precisely
// to deliver the old configuration's remaining messages — whose
// GroupIDs were assigned under the old table — before the new regular
// configuration installs (EVS delivery guarantees, PAPER.md §4).
//
// The sender-side corollary: a process must never intern locally at
// submission time (its submission order is not the total order).
// Mux.Send falls back to a by-name envelope until the name's join has
// come back around in the total order.
package groups

import "hash/fnv"

// SymbolTable interns group names into dense GroupIDs, driven by the
// delivered total order.
type SymbolTable struct {
	ids   map[string]GroupID
	names []string
}

// newSymbolTable returns an empty table.
func newSymbolTable() *SymbolTable {
	return &SymbolTable{ids: make(map[string]GroupID)}
}

// intern returns the GroupID for name, allocating the next dense ID on
// first sight. fresh reports whether this call allocated.
func (t *SymbolTable) intern(name string) (id GroupID, fresh bool) {
	if id, ok := t.ids[name]; ok {
		return id, false
	}
	id = GroupID(len(t.names))
	t.ids[name] = id
	t.names = append(t.names, name)
	return id, true
}

// lookup returns the GroupID for name without interning.
//
//evs:noalloc
func (t *SymbolTable) lookup(name string) (GroupID, bool) {
	id, ok := t.ids[name]
	return id, ok
}

// lookupBytes is lookup keyed by a byte view (the compiler elides the
// string conversion inside a map index, so this does not allocate).
//
//evs:noalloc
func (t *SymbolTable) lookupBytes(name []byte) (GroupID, bool) {
	id, ok := t.ids[string(name)]
	return id, ok
}

// Name returns the interned name for id, or "" if out of range.
//
//evs:noalloc
func (t *SymbolTable) Name(id GroupID) string {
	if int(id) >= len(t.names) {
		return ""
	}
	return t.names[id]
}

// Len returns the number of interned names.
func (t *SymbolTable) Len() int { return len(t.names) }

// reset drops all assignments (regular configuration install).
func (t *SymbolTable) reset() {
	t.ids = make(map[string]GroupID)
	t.names = t.names[:0]
}

// Canonical serialises the table in ID order: byte-identical across
// processes exactly when the tables agree. Differential tests compare
// these across the cluster after chaos partitions and merges.
func (t *SymbolTable) Canonical() []byte {
	n := 0
	for _, name := range t.names {
		n += len(name) + 11
	}
	out := make([]byte, 0, n)
	for id, name := range t.names {
		out = appendUvarint(out, uint64(id))
		out = appendUvarint(out, uint64(len(name)))
		out = append(out, name...)
	}
	return out
}

// Fingerprint hashes Canonical for cheap cross-process comparison.
func (t *SymbolTable) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write(t.Canonical())
	return h.Sum64()
}

// Package groups multiplexes named process groups over one extended
// virtual synchrony transport — the "process group paradigm" the paper's
// introduction names as the natural addressing mechanism for multicast
// communication, and the way deployed EVS systems (Spread's lightweight
// groups) expose the service at scale.
//
// A process joins and leaves named groups; data messages are addressed
// to a group and delivered only to its members. Group membership views
// are derived deterministically from the totally ordered stream:
// subscription changes ride safe messages, so every member of a
// configuration applies them in the same order and derives identical
// views; at a configuration change, each process re-announces its own
// subscriptions in the new configuration, which rebuilds the table
// consistently after partitions and merges (a component only ever sees
// announcements from processes it can reach — group views shrink and
// grow with the configuration, exactly like the transport's own
// membership).
//
// Three structural decisions make the layer scale to thousands of
// groups and 100k+ client endpoints on a small ring:
//
//   - Binary envelopes (codec.go): a kind byte, varint IDs, payload as
//     the untouched buffer tail. The old JSON envelope cost a full
//     unmarshal at every process for every message.
//   - Interned routing (symtab.go): group names become dense GroupIDs
//     assigned identically at every process from the total order, so
//     the data path indexes a slice instead of hashing strings, and a
//     non-member drops a message after peeking a few header bytes —
//     no decode, no allocation (the membership-filtered fast path).
//   - Lightweight clients: many client endpoints multiplex over one
//     ring member, Spread-style. Client join/leave/send are ordered
//     group events (batchable: one safe message can carry hundreds of
//     subscription ops), per-group member views track the *hosts*,
//     and each host fans a delivery out to its local subscribed
//     clients' queues.
package groups

import (
	"errors"
	"sort"

	"repro/internal/model"
	"repro/internal/obs"
)

// Event is the sealed union of group-layer outputs.
type Event interface{ isEvent() }

// ViewChange reports a group's new membership view. Views are delivered
// in the same order at every process of the configuration (they derive
// from the safe total order).
type ViewChange struct {
	Group string
	// Members are the subscribed host processes reachable in the
	// current configuration (a host counts whether it subscribed in its
	// own right or on behalf of local clients).
	Members model.ProcessSet
	// Clients is the total number of client subscriptions to the group
	// across all hosts (0 for purely process-level groups).
	Clients int
	// Config is the transport configuration the view derives from. For
	// views emitted by a transitional configuration's prune this is the
	// transitional ID: the shrunken view the paper's transitional
	// configuration exists to report.
	Config model.ConfigID
}

func (ViewChange) isEvent() {}

// Deliver is a group-addressed message delivery (only at members).
type Deliver struct {
	Group string
	// ID is the group's interned ID in the current epoch.
	ID GroupID
	// Sender is the host process that sequenced the message.
	Sender model.ProcessID
	// Client is the sending client endpoint on that host (0 when the
	// process itself sent).
	Client ClientID
	// Payload views the delivered message's tail; receivers must treat
	// it as immutable.
	Payload []byte
}

func (Deliver) isEvent() {}

// Sink receives data deliveries on the hot path. Deliver is passed by
// value, so a counting sink costs no allocation; retaining sinks copy
// what they keep.
type Sink interface {
	OnGroupData(d Deliver)
}

// groupState is one group's routing state, indexed by GroupID.
type groupState struct {
	name string
	// procSubs marks hosts subscribed in their own right.
	procSubs map[model.ProcessID]bool
	// clientRefs counts client subscriptions per host.
	clientRefs map[model.ProcessID]int
	// members is the sorted union of the above, maintained
	// incrementally (the old implementation rebuilt it with an
	// allocate-and-filter pass on every change).
	members []model.ProcessID
	// clients is the total client subscription count across hosts.
	clients int
	// localClients are this host's subscribed client endpoints, in
	// subscription (total) order.
	localClients []ClientID
	// selfWant caches whether this process delivers the group's data:
	// procSubs[self] plus len(localClients). The data fast path tests
	// only this.
	selfWant int
}

// active reports whether host p belongs in members.
func (g *groupState) active(p model.ProcessID) bool {
	return g.procSubs[p] || g.clientRefs[p] > 0
}

// insertMember adds p to the sorted member list (idempotent).
func (g *groupState) insertMember(p model.ProcessID) {
	i := sort.Search(len(g.members), func(i int) bool { return g.members[i] >= p })
	if i < len(g.members) && g.members[i] == p {
		return
	}
	g.members = append(g.members, "")
	copy(g.members[i+1:], g.members[i:])
	g.members[i] = p
}

// removeMember removes p from the sorted member list (idempotent).
func (g *groupState) removeMember(p model.ProcessID) {
	i := sort.Search(len(g.members), func(i int) bool { return g.members[i] >= p })
	if i >= len(g.members) || g.members[i] != p {
		return
	}
	g.members = append(g.members[:i], g.members[i+1:]...)
}

// clientState is one local client endpoint.
type clientState struct {
	// subs is the client's subscription intent by group name (survives
	// configuration changes; re-announced on install).
	subs map[string]bool
	// delivered counts data deliveries fanned out to this client.
	delivered uint64
	// queue is the client's delivery queue (only when the Mux retains
	// queues; high-volume rigs count instead).
	queue []Deliver
}

// Mux is the per-process group multiplexer: a deterministic state
// machine over the process's EVS delivery stream.
type Mux struct {
	self model.ProcessID
	// cfg is the current transport configuration (regular or
	// transitional).
	cfg model.Configuration
	// mine is this process's own subscription intent (survives
	// configuration changes).
	mine map[string]bool
	// syms and groups are the epoch's replicated interning state:
	// groups[id] is the state for syms.Name(id).
	syms   *SymbolTable
	groups []groupState
	// clients are this host's registered client endpoints.
	clients map[ClientID]*clientState
	// sink receives data deliveries (nil: deliveries only count).
	sink Sink
	// retainQueues enables per-client delivery queues.
	retainQueues bool
	// met is the optional per-process metric scope (nil-safe).
	met *obs.Metrics

	// arena amortises data-envelope encoding, chunk-carved like the
	// transport's own payload wrapping.
	arena []byte

	delivered       uint64 // member data deliveries at this process
	clientDelivered uint64 // fan-out deliveries into client endpoints
	filtered        uint64 // header-peek drops (no decode)
	malformed       uint64 // undecodable payloads
}

// New creates a multiplexer.
func New(self model.ProcessID) *Mux {
	return &Mux{
		self:    self,
		mine:    make(map[string]bool),
		syms:    newSymbolTable(),
		clients: make(map[ClientID]*clientState),
	}
}

// SetSink installs the data-delivery sink.
func (m *Mux) SetSink(s Sink) { m.sink = s }

// SetMetrics attaches a metric scope (nil disables).
func (m *Mux) SetMetrics(met *obs.Metrics) { m.met = met }

// RetainQueues enables per-client delivery queues (off by default:
// the 100k-client bench counts deliveries instead of accumulating
// them).
func (m *Mux) RetainQueues(on bool) { m.retainQueues = on }

// ErrClientZero rejects client ID 0, reserved for the process itself.
var ErrClientZero = errors.New("groups: client id 0 is reserved")

// Join returns the payload to broadcast (safe) to subscribe this
// process to a group. Idempotent at the table level.
func (m *Mux) Join(group string) ([]byte, error) {
	m.mine[group] = true
	return Encode(Envelope{Kind: KindJoin, Group: group})
}

// Leave returns the payload to broadcast (safe) to unsubscribe.
func (m *Mux) Leave(group string) ([]byte, error) {
	delete(m.mine, group)
	return Encode(Envelope{Kind: KindLeave, Group: group})
}

// ClientJoin registers a local client endpoint's subscription and
// returns the payload to broadcast, or nil if the client is already
// subscribed: deduplication happens at the source, so remote reference
// counts can never drift from duplicate submissions.
func (m *Mux) ClientJoin(client ClientID, group string) ([]byte, error) {
	if client == 0 {
		return nil, ErrClientZero
	}
	cs := m.client(client)
	if cs.subs[group] {
		return nil, nil
	}
	cs.subs[group] = true
	return Encode(Envelope{Kind: KindClientOps, Ops: []ClientOp{{Client: client, Group: group}}})
}

// ClientLeave unregisters a local client subscription, returning nil if
// the client was not subscribed.
func (m *Mux) ClientLeave(client ClientID, group string) ([]byte, error) {
	if client == 0 {
		return nil, ErrClientZero
	}
	cs := m.client(client)
	if !cs.subs[group] {
		return nil, nil
	}
	delete(cs.subs, group)
	return Encode(Envelope{Kind: KindClientOps, Ops: []ClientOp{{Leave: true, Client: client, Group: group}}})
}

// ClientOpsPayload batches client subscription ops into one safe
// message — the daemon-style aggregation that joins hundreds of clients
// per ordered event. Ops already matching local intent are skipped;
// the returned count is the number actually encoded (0 yields a nil
// payload).
func (m *Mux) ClientOpsPayload(ops []ClientOp) ([]byte, int, error) {
	kept := make([]ClientOp, 0, len(ops))
	for _, op := range ops {
		if op.Client == 0 {
			return nil, 0, ErrClientZero
		}
		cs := m.client(op.Client)
		if op.Leave {
			if !cs.subs[op.Group] {
				continue
			}
			delete(cs.subs, op.Group)
		} else {
			if cs.subs[op.Group] {
				continue
			}
			cs.subs[op.Group] = true
		}
		kept = append(kept, op)
	}
	if len(kept) == 0 {
		return nil, 0, nil
	}
	b, err := Encode(Envelope{Kind: KindClientOps, Ops: kept})
	if err != nil {
		return nil, 0, err
	}
	return b, len(kept), nil
}

// Send returns the payload to broadcast carrying data to a group. If
// the name is interned in this epoch the envelope carries the dense
// GroupID (arena-carved, allocation-free); otherwise it falls back to
// a by-name envelope — interning locally would diverge from the total
// order, so resolution waits for delivery, where every process resolves
// identically. The returned envelope is carved from the Mux arena,
// valid until the arena chunk is reused; transports consume it
// synchronously or copy.
//
//evs:arena
func (m *Mux) Send(group string, data []byte) ([]byte, error) {
	return m.sendAs(0, group, data)
}

// ClientSend is Send on behalf of a local client endpoint.
//
//evs:arena
func (m *Mux) ClientSend(client ClientID, group string, data []byte) ([]byte, error) {
	if client == 0 {
		return nil, ErrClientZero
	}
	return m.sendAs(client, group, data)
}

//evs:arena
func (m *Mux) sendAs(client ClientID, group string, data []byte) ([]byte, error) {
	if gid, ok := m.syms.lookup(group); ok {
		return m.SendTo(client, gid, data), nil
	}
	return appendDataName(nil, client, group, data)
}

// arenaChunk sizes the encode arena carve, matching the transport's
// payload-wrapping arena.
const arenaChunk = 16 << 10

// SendTo encodes a data envelope to an interned group, carving from
// the Mux arena: the send-side hot path (a bogus GroupID is filtered
// at every receiver, so no validation is needed here).
//
//evs:arena
//evs:noalloc
func (m *Mux) SendTo(client ClientID, gid GroupID, data []byte) []byte {
	need := len(data) + 12 // kind + 2 maximal varints + slack
	if cap(m.arena)-len(m.arena) < need {
		size := arenaChunk
		if need > size {
			size = need
		}
		m.arena = make([]byte, 0, size)
	}
	n := len(m.arena)
	m.arena = appendData(m.arena, client, gid, data)
	return m.arena[n:len(m.arena):len(m.arena)]
}

// Member reports whether this process currently intends membership.
func (m *Mux) Member(group string) bool { return m.mine[group] }

// Groups returns this process's subscriptions, sorted.
func (m *Mux) Groups() []string {
	out := make([]string, 0, len(m.mine))
	for g := range m.mine {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// Resolve returns the group's interned ID in the current epoch.
func (m *Mux) Resolve(group string) (GroupID, bool) {
	return m.syms.lookup(group)
}

// Symbols exposes the epoch's symbol table (for fingerprint
// comparison across processes; do not mutate).
func (m *Mux) Symbols() *SymbolTable { return m.syms }

// Delivered returns member data deliveries at this process.
func (m *Mux) Delivered() uint64 { return m.delivered }

// ClientDelivered returns fan-out deliveries into local clients.
func (m *Mux) ClientDelivered() uint64 { return m.clientDelivered }

// Filtered returns header-peek drops (messages never decoded).
func (m *Mux) Filtered() uint64 { return m.filtered }

// Malformed returns undecodable payload drops.
func (m *Mux) Malformed() uint64 { return m.malformed }

// ClientDeliveredFor returns one client's delivery count.
func (m *Mux) ClientDeliveredFor(client ClientID) uint64 {
	if cs, ok := m.clients[client]; ok {
		return cs.delivered
	}
	return 0
}

// ClientQueue returns a client's retained delivery queue (nil unless
// RetainQueues is on).
func (m *Mux) ClientQueue(client ClientID) []Deliver {
	if cs, ok := m.clients[client]; ok {
		return cs.queue
	}
	return nil
}

// View returns the current view of a group.
func (m *Mux) View(group string) ViewChange {
	if gid, ok := m.syms.lookup(group); ok {
		return m.viewOf(gid)
	}
	return ViewChange{Group: group, Members: model.NewProcessSet(), Config: m.cfg.ID}
}

func (m *Mux) viewOf(gid GroupID) ViewChange {
	g := &m.groups[gid]
	return ViewChange{
		Group:   g.name,
		Members: model.NewProcessSet(g.members...),
		Clients: g.clients,
		Config:  m.cfg.ID,
	}
}

// client lazily creates a client endpoint record.
func (m *Mux) client(id ClientID) *clientState {
	cs := m.clients[id]
	if cs == nil {
		cs = &clientState{subs: make(map[string]bool)}
		m.clients[id] = cs
	}
	return cs
}

// internGroup interns a name, keeping the routing table parallel to
// the symbol table.
func (m *Mux) internGroup(name string) GroupID {
	id, fresh := m.syms.intern(name)
	if fresh {
		m.groups = append(m.groups, groupState{name: m.syms.Name(id)})
	}
	return id
}

// wants reports whether this process cares about a group's view:
// its own intent, or local client subscribers.
func (m *Mux) wants(g *groupState) bool {
	return m.mine[g.name] || len(g.localClients) > 0
}

// OnConfig ingests a transport configuration change.
//
// A transitional configuration prunes each group's members to the
// processes still reachable and emits the shrunken views — the
// group-level analogue of the transitional configuration itself. The
// symbol table is retained: the transitional configuration exists to
// deliver the old configuration's remaining messages, whose GroupIDs
// were assigned under the old table.
//
// A regular configuration resets the epoch (symbol table and routing
// state) and returns the announcement payload to broadcast (safe);
// views are then rebuilt deterministically by the announcements that
// follow, growing from empty exactly like the subscription table. An
// encode failure still resets (the configuration change happened) but
// yields no announcement.
func (m *Mux) OnConfig(cfg model.Configuration) ([]byte, []Event, error) {
	if cfg.ID.IsTransitional() {
		m.cfg = cfg
		return nil, m.pruneToConfig(), nil
	}
	m.cfg = cfg
	m.syms.reset()
	m.groups = m.groups[:0]
	announce, err := m.announcePayload()
	if err != nil {
		return nil, nil, err
	}
	return announce, nil, nil
}

// pruneToConfig drops hosts no longer in the configuration from every
// group, emitting shrunken views for groups this process cares about.
func (m *Mux) pruneToConfig() []Event {
	var out []Event
	for gid := range m.groups {
		g := &m.groups[gid]
		changed := false
		// Hold the index on removal: removeMember shifts in place.
		for i := 0; i < len(g.members); {
			p := g.members[i]
			if m.cfg.Members.Contains(p) {
				i++
				continue
			}
			if g.procSubs[p] {
				delete(g.procSubs, p)
			}
			if n := g.clientRefs[p]; n > 0 {
				g.clients -= n
				delete(g.clientRefs, p)
			}
			g.removeMember(p)
			changed = true
		}
		if changed && m.wants(g) {
			out = append(out, m.viewOf(GroupID(gid)))
		}
	}
	return out
}

// announcePayload encodes this process's full subscription state —
// its own intent plus every local client's — deterministically sorted.
func (m *Mux) announcePayload() ([]byte, error) {
	var subs []ClientSub
	ids := make([]ClientID, 0, len(m.clients))
	for id, cs := range m.clients {
		if len(cs.subs) > 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		cs := m.clients[id]
		gs := make([]string, 0, len(cs.subs))
		for g := range cs.subs {
			gs = append(gs, g)
		}
		sort.Strings(gs)
		subs = append(subs, ClientSub{Client: id, Groups: gs})
	}
	if len(m.mine) == 0 && len(subs) == 0 {
		return nil, nil
	}
	return Encode(Envelope{Kind: KindAnnounce, Groups: m.Groups(), ClientSubs: subs})
}

// OnDeliver ingests a group-layer payload delivered by the transport
// (in total order) and returns the resulting control events at this
// process. Data deliveries do not return events: they go to the Sink
// and the client queues (boxing every delivery into an Event would put
// an allocation back on the hot path).
func (m *Mux) OnDeliver(sender model.ProcessID, payload []byte) []Event {
	if len(payload) == 0 {
		m.malformed++
		return nil
	}
	switch Kind(payload[0]) {
	case KindData, KindClientData:
		m.onData(sender, payload)
		return nil
	}
	env, err := Decode(payload)
	if err != nil {
		m.malformed++
		return nil
	}
	switch env.Kind {
	case KindJoin:
		return m.subscribeProc(sender, env.Group)
	case KindLeave:
		return m.unsubscribeProc(sender, env.Group)
	case KindAnnounce:
		return m.applyAnnounce(sender, env)
	case KindClientOps:
		return m.applyClientOps(sender, env.Ops)
	case KindDataName, KindClientDataName:
		m.onDataName(sender, env)
		return nil
	default:
		m.malformed++
		return nil
	}
}

// onData is the data hot path: peek the fixed header, index the dense
// routing table, and drop without decoding when this process has no
// subscriber — the membership-filtered fast path that turns
// per-message cost at non-members from O(decode) into O(1).
//
//evs:noalloc
func (m *Mux) onData(sender model.ProcessID, payload []byte) {
	client, gid, body, ok := peekData(payload)
	if !ok {
		m.malformed++
		return
	}
	if int(gid) >= len(m.groups) || m.groups[gid].selfWant == 0 {
		m.filtered++
		m.met.Inc(obs.CGroupsFiltered)
		return
	}
	g := &m.groups[gid]
	m.deliverData(g, gid, sender, client, body)
}

// deliverData fans one member delivery out to the sink and local
// client queues.
//
//evs:noalloc
func (m *Mux) deliverData(g *groupState, gid GroupID, sender model.ProcessID, client ClientID, body []byte) {
	m.delivered++
	//lint:allow wireown delivery views the ordered payload's data tail, immutable after handoff; receivers copy before retaining
	d := Deliver{Group: g.name, ID: gid, Sender: sender, Client: client, Payload: body}
	if m.sink != nil {
		m.sink.OnGroupData(d)
	}
	for _, c := range g.localClients {
		cs := m.clients[c]
		if cs == nil {
			continue
		}
		cs.delivered++
		m.clientDelivered++
		if m.retainQueues {
			cs.queue = append(cs.queue, d)
		}
	}
}

// onDataName handles the by-name fallback: the name is interned here,
// in delivery order, so every process assigns the same ID even when
// the group was previously unknown.
func (m *Mux) onDataName(sender model.ProcessID, env Envelope) {
	gid := m.internGroup(env.Group)
	g := &m.groups[gid]
	if g.selfWant == 0 {
		m.filtered++
		m.met.Inc(obs.CGroupsFiltered)
		return
	}
	m.deliverData(g, gid, sender, env.Client, env.Data)
}

// subscribeProc records a process-level subscription and emits a view
// change if the visible membership changed and this process cares.
func (m *Mux) subscribeProc(p model.ProcessID, group string) []Event {
	gid := m.internGroup(group)
	g := &m.groups[gid]
	if !m.cfg.Members.Contains(p) {
		// A straggler from a departed process (deliverable in the
		// transitional configuration): the name is interned — that must
		// match at every process — but the host is unreachable and the
		// next regular install resets the table anyway.
		return nil
	}
	if g.procSubs == nil {
		g.procSubs = make(map[model.ProcessID]bool)
	}
	if g.procSubs[p] {
		return nil
	}
	wasActive := g.active(p)
	g.procSubs[p] = true
	if !wasActive {
		g.insertMember(p)
	}
	if p == m.self {
		g.selfWant++
	}
	if !m.wants(g) && p != m.self {
		return nil
	}
	return []Event{m.viewOf(gid)}
}

// unsubscribeProc removes a process-level subscription likewise.
func (m *Mux) unsubscribeProc(p model.ProcessID, group string) []Event {
	gid := m.internGroup(group)
	g := &m.groups[gid]
	if !g.procSubs[p] {
		return nil
	}
	delete(g.procSubs, p)
	if p == m.self {
		delete(m.mine, group)
		g.selfWant--
	}
	if !g.active(p) {
		g.removeMember(p)
	}
	if !m.cfg.Members.Contains(p) {
		return nil
	}
	if !m.wants(g) && p != m.self {
		return nil
	}
	return []Event{m.viewOf(gid)}
}

// applyAnnounce folds a host's announced subscription state into the
// epoch's table: its own groups as process subscriptions, its clients'
// groups as client references. View events coalesce to one per touched
// group.
func (m *Mux) applyAnnounce(sender model.ProcessID, env Envelope) []Event {
	var out []Event
	for _, g := range env.Groups {
		out = append(out, m.subscribeProc(sender, g)...)
	}
	ops := make([]ClientOp, 0, len(env.ClientSubs))
	for _, cs := range env.ClientSubs {
		for _, g := range cs.Groups {
			ops = append(ops, ClientOp{Client: cs.Client, Group: g})
		}
	}
	out = append(out, m.applyClientOps(sender, ops)...)
	return out
}

// applyClientOps folds a batch of client subscription changes into the
// table. Views coalesce: one event per touched group per batch, in
// first-touch order (a 512-op join batch emits 512 table updates but
// at most a handful of view events).
func (m *Mux) applyClientOps(sender model.ProcessID, ops []ClientOp) []Event {
	var touched []GroupID
	for _, op := range ops {
		gid := m.internGroup(op.Group)
		if op.Client == 0 {
			continue
		}
		if !m.cfg.Members.Contains(sender) {
			continue
		}
		g := &m.groups[gid]
		changed := false
		if op.Leave {
			changed = m.clientLeaveAt(g, sender, op.Client)
		} else {
			changed = m.clientJoinAt(g, sender, op.Client, op.Group)
		}
		if !changed || (!m.wants(g) && sender != m.self) {
			continue
		}
		seen := false
		for _, t := range touched {
			if t == gid {
				seen = true
				break
			}
		}
		if !seen {
			touched = append(touched, gid)
		}
	}
	var out []Event
	for _, gid := range touched {
		out = append(out, m.viewOf(gid))
	}
	return out
}

// clientJoinAt applies one client join at host p.
func (m *Mux) clientJoinAt(g *groupState, p model.ProcessID, client ClientID, group string) bool {
	if p == m.self {
		// Guard local duplicates structurally: localClients must list
		// each endpoint once (remote duplicates are prevented at the
		// source, where intent dedups before encoding).
		for _, c := range g.localClients {
			if c == client {
				return false
			}
		}
		g.localClients = append(g.localClients, client)
		g.selfWant++
		cs := m.client(client)
		cs.subs[group] = true
	}
	wasActive := g.active(p)
	if g.clientRefs == nil {
		g.clientRefs = make(map[model.ProcessID]int)
	}
	g.clientRefs[p]++
	g.clients++
	if !wasActive {
		g.insertMember(p)
	}
	return true
}

// clientLeaveAt applies one client leave at host p.
func (m *Mux) clientLeaveAt(g *groupState, p model.ProcessID, client ClientID) bool {
	if p == m.self {
		found := false
		for i, c := range g.localClients {
			if c == client {
				g.localClients = append(g.localClients[:i], g.localClients[i+1:]...)
				found = true
				break
			}
		}
		if !found {
			return false
		}
		g.selfWant--
		if cs, ok := m.clients[client]; ok {
			delete(cs.subs, g.name)
		}
	}
	if g.clientRefs[p] == 0 {
		// A leave with no recorded join (stale straggler): ignore
		// rather than let the count go negative.
		return false
	}
	g.clientRefs[p]--
	g.clients--
	if !g.active(p) {
		g.removeMember(p)
	}
	return true
}

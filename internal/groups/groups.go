// Package groups multiplexes named process groups over one extended
// virtual synchrony transport — the "process group paradigm" the paper's
// introduction names as the natural addressing mechanism for multicast
// communication, and the way deployed EVS systems (Spread's lightweight
// groups) expose the service.
//
// A process joins and leaves named groups; data messages are addressed to
// a group and delivered only to its members. Group membership views are
// derived deterministically from the totally ordered stream: subscription
// changes ride safe messages, so every member of a configuration applies
// them in the same order and derives identical views; at a configuration
// change, each process re-announces its own subscriptions in the new
// configuration, which rebuilds the table consistently after partitions
// and merges (a component only ever sees announcements from processes it
// can reach — group views shrink and grow with the configuration, exactly
// like the transport's own membership).
package groups

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/model"
)

// Kind tags group-layer payloads.
type Kind string

const (
	// KindJoin subscribes the sender to a group.
	KindJoin Kind = "join"
	// KindLeave unsubscribes the sender.
	KindLeave Kind = "leave"
	// KindAnnounce re-declares the sender's full subscription set (sent
	// on configuration changes).
	KindAnnounce Kind = "announce"
	// KindData is an application message addressed to a group.
	KindData Kind = "data"
)

// Envelope is the group-layer wire format, carried as an EVS payload.
type Envelope struct {
	Kind   Kind     `json:"kind"`
	Group  string   `json:"group,omitempty"`
	Groups []string `json:"groups,omitempty"` // KindAnnounce
	Data   []byte   `json:"data,omitempty"`   // KindData
}

// Encode serialises an envelope. Marshal failures are propagated, not
// panicked: the group layer sits inside the protocol stack, and a bad
// payload must surface as a dropped (counted) message, not a crash.
func Encode(e Envelope) ([]byte, error) {
	b, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("groups: marshal: %w", err)
	}
	return b, nil
}

// Decode parses an envelope.
func Decode(b []byte) (Envelope, error) {
	var e Envelope
	if err := json.Unmarshal(b, &e); err != nil {
		return Envelope{}, fmt.Errorf("groups: unmarshal: %w", err)
	}
	return e, nil
}

// Event is the sealed union of group-layer outputs.
type Event interface{ isEvent() }

// ViewChange reports a group's new membership view. Views are delivered
// in the same order at every process of the configuration (they derive
// from the safe total order).
type ViewChange struct {
	Group string
	// Members are the subscribed processes reachable in the current
	// configuration.
	Members model.ProcessSet
	// Config is the transport configuration the view derives from.
	Config model.ConfigID
}

func (ViewChange) isEvent() {}

// Deliver is a group-addressed message delivery (only at members).
type Deliver struct {
	Group   string
	Sender  model.ProcessID
	Payload []byte
}

func (Deliver) isEvent() {}

// Mux is the per-process group multiplexer: a deterministic state machine
// over the process's EVS delivery stream.
type Mux struct {
	self model.ProcessID
	// mine is this process's own subscription set (survives
	// configuration changes; the application's intent).
	mine map[string]bool
	// subs is the replicated subscription table for the current
	// configuration: group -> subscribers heard from.
	subs map[string]map[model.ProcessID]bool
	// cfg is the current regular configuration.
	cfg model.Configuration
}

// New creates a multiplexer.
func New(self model.ProcessID) *Mux {
	return &Mux{
		self: self,
		mine: make(map[string]bool),
		subs: make(map[string]map[model.ProcessID]bool),
	}
}

// Join returns the payload to broadcast (safe) to subscribe this process
// to a group. Idempotent at the table level.
func (m *Mux) Join(group string) ([]byte, error) {
	m.mine[group] = true
	return Encode(Envelope{Kind: KindJoin, Group: group})
}

// Leave returns the payload to broadcast (safe) to unsubscribe.
func (m *Mux) Leave(group string) ([]byte, error) {
	delete(m.mine, group)
	return Encode(Envelope{Kind: KindLeave, Group: group})
}

// Send returns the payload to broadcast carrying data to a group.
func (m *Mux) Send(group string, data []byte) ([]byte, error) {
	return Encode(Envelope{Kind: KindData, Group: group, Data: data})
}

// Member reports whether this process currently belongs to the group.
func (m *Mux) Member(group string) bool { return m.mine[group] }

// Groups returns this process's subscriptions, sorted.
func (m *Mux) Groups() []string {
	out := make([]string, 0, len(m.mine))
	for g := range m.mine {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}

// View returns the current view of a group.
func (m *Mux) View(group string) ViewChange {
	return m.view(group)
}

func (m *Mux) view(group string) ViewChange {
	var ids []model.ProcessID
	for p := range m.subs[group] {
		if m.cfg.Members.Contains(p) {
			ids = append(ids, p)
		}
	}
	return ViewChange{
		Group:   group,
		Members: model.NewProcessSet(ids...),
		Config:  m.cfg.ID,
	}
}

// OnConfig ingests a transport configuration change. For a regular
// configuration it resets the table and returns the announcement payload
// to broadcast (safe) plus view changes for this process's groups
// (shrunken to what the table knows so far — the announcements that follow
// will grow them back deterministically). An encode failure still resets
// the table (the configuration change happened) but yields no
// announcement.
func (m *Mux) OnConfig(cfg model.Configuration) ([]byte, []Event, error) {
	if cfg.ID.IsTransitional() {
		return nil, nil, nil
	}
	m.cfg = cfg
	m.subs = make(map[string]map[model.ProcessID]bool)
	var announce []byte
	if len(m.mine) > 0 {
		var err error
		announce, err = Encode(Envelope{Kind: KindAnnounce, Groups: m.Groups()})
		if err != nil {
			return nil, nil, err
		}
	}
	return announce, nil, nil
}

// OnDeliver ingests a group-layer payload delivered by the transport (in
// total order) and returns the resulting events at this process.
func (m *Mux) OnDeliver(sender model.ProcessID, payload []byte) []Event {
	env, err := Decode(payload)
	if err != nil {
		return nil
	}
	switch env.Kind {
	case KindJoin:
		return m.subscribe(sender, env.Group)
	case KindLeave:
		return m.unsubscribe(sender, env.Group)
	case KindAnnounce:
		var out []Event
		for _, g := range env.Groups {
			out = append(out, m.subscribe(sender, g)...)
		}
		return out
	case KindData:
		if !m.mine[env.Group] {
			return nil
		}
		return []Event{Deliver{Group: env.Group, Sender: sender, Payload: env.Data}}
	default:
		return nil
	}
}

// subscribe records a subscription and emits a view change if the visible
// membership changed and this process cares about the group.
func (m *Mux) subscribe(p model.ProcessID, group string) []Event {
	if m.subs[group] == nil {
		m.subs[group] = make(map[model.ProcessID]bool)
	}
	if m.subs[group][p] {
		return nil
	}
	m.subs[group][p] = true
	if !m.mine[group] && p != m.self {
		return nil
	}
	if !m.cfg.Members.Contains(p) {
		return nil
	}
	return []Event{m.view(group)}
}

// unsubscribe removes a subscription, emitting a view change likewise.
func (m *Mux) unsubscribe(p model.ProcessID, group string) []Event {
	if m.subs[group] == nil || !m.subs[group][p] {
		return nil
	}
	delete(m.subs[group], p)
	if p == m.self {
		delete(m.mine, group)
	}
	if !m.mine[group] && p != m.self {
		return nil
	}
	if !m.cfg.Members.Contains(p) {
		return nil
	}
	return []Event{m.view(group)}
}

// Binary envelope codec for the group layer.
//
// The seed implementation carried every group-layer payload as JSON: a
// marshal per send and a full unmarshal at *every* process for *every*
// message, member or not. At Spread scale (thousands of groups, 100k+
// client endpoints over one daemon ring) that decode is the dominant
// per-message cost. This codec replaces it with a flat binary layout in
// the internal/wire style: a kind byte, varint-coded integers, and the
// data payload as the untouched tail of the buffer — so a receiver can
// route (or drop) a data message after reading a handful of header
// bytes, without decoding, copying, or allocating.
//
// Layouts (all integers unsigned varints):
//
//	join           k=1 | len(name) name
//	leave          k=2 | len(name) name
//	announce       k=3 | nNames (len name)* | nClients (client nNames (len name)*)*
//	data           k=4 | gid | body...
//	dataName       k=5 | len(name) name | body...
//	clientOps      k=6 | nOps (op client len(name) name)*
//	clientData     k=7 | client gid | body...
//	clientDataName k=8 | client len(name) name | body...
//
// Data messages normally carry a dense interned GroupID (see
// SymbolTable); the *Name variants exist for the rare send to a group
// whose name has not yet been interned at the sender — resolution then
// happens at delivery time, where the total order guarantees every
// process resolves identically.
//
// Decoding is strict and total: truncated or corrupt input yields an
// error, never a panic (the nopanic analyzer polices this package), and
// never an allocation proportional to a length field that the input
// cannot back.
package groups

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Kind tags group-layer payloads (byte 0 of every envelope).
type Kind byte

const (
	// KindJoin subscribes the sending process to a group.
	KindJoin Kind = 1
	// KindLeave unsubscribes the sending process.
	KindLeave Kind = 2
	// KindAnnounce re-declares the sender's full subscription state —
	// its own groups and its local clients' groups — sent on
	// configuration changes.
	KindAnnounce Kind = 3
	// KindData is an application message addressed to an interned group.
	KindData Kind = 4
	// KindDataName is an application message addressed to a group by
	// name (the sender had not interned it yet).
	KindDataName Kind = 5
	// KindClientOps is a batch of client join/leave operations: the
	// daemon-style aggregation that lets one ordered message subscribe
	// hundreds of client endpoints.
	KindClientOps Kind = 6
	// KindClientData is an application message sent by a client
	// endpoint to an interned group.
	KindClientData Kind = 7
	// KindClientDataName is KindClientData with the group by name.
	KindClientDataName Kind = 8

	kindMax = KindClientDataName
)

// String renders the kind for traces and errors.
func (k Kind) String() string {
	switch k {
	case KindJoin:
		return "join"
	case KindLeave:
		return "leave"
	case KindAnnounce:
		return "announce"
	case KindData:
		return "data"
	case KindDataName:
		return "data_name"
	case KindClientOps:
		return "client_ops"
	case KindClientData:
		return "client_data"
	case KindClientDataName:
		return "client_data_name"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// GroupID is a dense interned group identifier, valid within one
// configuration epoch (see SymbolTable).
type GroupID uint32

// ClientID identifies a lightweight client endpoint on its host
// process. IDs are chosen by the host's application and should be
// small dense integers (they index the host's client table); 0 is
// reserved to mean "the process itself" in Deliver events.
type ClientID uint32

// MaxNameLen bounds group names on the wire: long names are an
// application bug, and the bound keeps decode allocations proportional
// to honest input.
const MaxNameLen = 4096

// ClientOp is one client subscription change inside a KindClientOps
// batch.
type ClientOp struct {
	// Leave is false for a join, true for a leave.
	Leave bool
	// Client is the client endpoint on the sending host.
	Client ClientID
	// Group is the group name.
	Group string
}

// ClientSub is one client's subscription list inside a KindAnnounce.
type ClientSub struct {
	Client ClientID
	Groups []string
}

// Envelope is the decoded form of a group-layer payload. Only the
// fields relevant to Kind are set. For data kinds, Data aliases the
// input buffer (the payload tail is never copied).
type Envelope struct {
	Kind Kind
	// Group is the group name (join, leave, dataName, clientDataName).
	Group string
	// GroupID is the interned group (data, clientData).
	GroupID GroupID
	// Client is the sending or subscribing client endpoint
	// (clientData, clientDataName).
	Client ClientID
	// Groups are the sender's own subscriptions (announce).
	Groups []string
	// ClientSubs are the sender's clients' subscriptions (announce).
	ClientSubs []ClientSub
	// Ops is the operation batch (clientOps).
	Ops []ClientOp
	// Data is the application payload (data kinds); a view into the
	// input buffer.
	Data []byte
}

// Codec errors.
var (
	// ErrTruncated reports input that ends inside a field.
	ErrTruncated = errors.New("groups: truncated envelope")
	// ErrCorrupt reports input that decodes to an impossible value
	// (unknown kind, oversized name, count the input cannot back).
	ErrCorrupt = errors.New("groups: corrupt envelope")
	// ErrNameTooLong reports an encode of a name beyond MaxNameLen.
	ErrNameTooLong = errors.New("groups: group name exceeds MaxNameLen")
)

// appendUvarint appends v as an unsigned varint.
//
//evs:noalloc
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// takeUvarint decodes a varint from b, returning the value, the rest of
// the buffer, and false on truncation or a varint longer than 10 bytes.
//
//evs:noalloc
func takeUvarint(b []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, false
	}
	return v, b[n:], true
}

// takeName decodes a length-prefixed name, enforcing MaxNameLen.
func takeName(b []byte) (string, []byte, error) {
	n, rest, ok := takeUvarint(b)
	if !ok {
		return "", nil, ErrTruncated
	}
	if n > MaxNameLen {
		return "", nil, fmt.Errorf("%w: name length %d", ErrCorrupt, n)
	}
	if uint64(len(rest)) < n {
		return "", nil, ErrTruncated
	}
	return string(rest[:n]), rest[n:], nil
}

// appendName appends a length-prefixed name.
func appendName(b []byte, name string) ([]byte, error) {
	if len(name) > MaxNameLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrNameTooLong, len(name))
	}
	b = appendUvarint(b, uint64(len(name)))
	return append(b, name...), nil
}

// Encode serialises an envelope. Failures (oversized names, an unknown
// kind) are propagated, not panicked: the group layer sits inside the
// protocol stack, and a bad payload must surface as a dropped (counted)
// message, not a crash.
func Encode(e Envelope) ([]byte, error) {
	b := make([]byte, 1, 16+len(e.Group)+len(e.Data))
	b[0] = byte(e.Kind)
	var err error
	switch e.Kind {
	case KindJoin, KindLeave:
		if b, err = appendName(b, e.Group); err != nil {
			return nil, err
		}
	case KindAnnounce:
		b = appendUvarint(b, uint64(len(e.Groups)))
		for _, g := range e.Groups {
			if b, err = appendName(b, g); err != nil {
				return nil, err
			}
		}
		b = appendUvarint(b, uint64(len(e.ClientSubs)))
		for _, cs := range e.ClientSubs {
			b = appendUvarint(b, uint64(cs.Client))
			b = appendUvarint(b, uint64(len(cs.Groups)))
			for _, g := range cs.Groups {
				if b, err = appendName(b, g); err != nil {
					return nil, err
				}
			}
		}
	case KindData:
		b = appendUvarint(b, uint64(e.GroupID))
		b = append(b, e.Data...)
	case KindDataName:
		if b, err = appendName(b, e.Group); err != nil {
			return nil, err
		}
		b = append(b, e.Data...)
	case KindClientOps:
		b = appendUvarint(b, uint64(len(e.Ops)))
		for _, op := range e.Ops {
			if op.Leave {
				b = append(b, 2)
			} else {
				b = append(b, 1)
			}
			b = appendUvarint(b, uint64(op.Client))
			if b, err = appendName(b, op.Group); err != nil {
				return nil, err
			}
		}
	case KindClientData:
		b = appendUvarint(b, uint64(e.Client))
		b = appendUvarint(b, uint64(e.GroupID))
		b = append(b, e.Data...)
	case KindClientDataName:
		b = appendUvarint(b, uint64(e.Client))
		if b, err = appendName(b, e.Group); err != nil {
			return nil, err
		}
		b = append(b, e.Data...)
	default:
		return nil, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, byte(e.Kind))
	}
	return b, nil
}

// takeID decodes a varint bounded to 32 bits (GroupID / ClientID).
func takeID(b []byte) (uint32, []byte, error) {
	v, rest, ok := takeUvarint(b)
	if !ok {
		return 0, nil, ErrTruncated
	}
	if v > 0xffffffff {
		return 0, nil, fmt.Errorf("%w: id %d overflows 32 bits", ErrCorrupt, v)
	}
	return uint32(v), rest, nil
}

// Decode parses an envelope. Control kinds must consume the input
// exactly; data kinds treat the tail as the application payload, which
// the returned Envelope aliases rather than copies.
func Decode(b []byte) (Envelope, error) {
	if len(b) == 0 {
		return Envelope{}, ErrTruncated
	}
	e := Envelope{Kind: Kind(b[0])}
	rest := b[1:]
	var err error
	switch e.Kind {
	case KindJoin, KindLeave:
		if e.Group, rest, err = takeName(rest); err != nil {
			return Envelope{}, err
		}
	case KindAnnounce:
		//lint:allow wireown decode output views the delivered payload tail; receivers treat delivered messages as immutable
		if e.Groups, rest, err = takeNames(rest); err != nil {
			return Envelope{}, err
		}
		n, r, ok := takeUvarint(rest)
		if !ok {
			return Envelope{}, ErrTruncated
		}
		rest = r
		// Each client entry needs at least 2 bytes (client id + count).
		if n > uint64(len(rest))/2+1 {
			return Envelope{}, fmt.Errorf("%w: %d client entries in %d bytes", ErrCorrupt, n, len(rest))
		}
		for i := uint64(0); i < n; i++ {
			var cs ClientSub
			var id uint32
			if id, rest, err = takeID(rest); err != nil {
				return Envelope{}, err
			}
			cs.Client = ClientID(id)
			//lint:allow wireown decode output views the delivered payload tail; receivers treat delivered messages as immutable
			if cs.Groups, rest, err = takeNames(rest); err != nil {
				return Envelope{}, err
			}
			e.ClientSubs = append(e.ClientSubs, cs)
		}
	case KindData:
		var id uint32
		if id, rest, err = takeID(rest); err != nil {
			return Envelope{}, err
		}
		e.GroupID = GroupID(id)
		//lint:allow wireown decode output views the delivered payload tail; receivers treat delivered messages as immutable
		e.Data = rest
		return e, nil
	case KindDataName:
		if e.Group, rest, err = takeName(rest); err != nil {
			return Envelope{}, err
		}
		//lint:allow wireown decode output views the delivered payload tail; receivers treat delivered messages as immutable
		e.Data = rest
		return e, nil
	case KindClientOps:
		n, r, ok := takeUvarint(rest)
		if !ok {
			return Envelope{}, ErrTruncated
		}
		rest = r
		// Each op needs at least 3 bytes (op + client + name length).
		if n > uint64(len(rest))/3+1 {
			return Envelope{}, fmt.Errorf("%w: %d ops in %d bytes", ErrCorrupt, n, len(rest))
		}
		for i := uint64(0); i < n; i++ {
			var op ClientOp
			if len(rest) == 0 {
				return Envelope{}, ErrTruncated
			}
			switch rest[0] {
			case 1:
				op.Leave = false
			case 2:
				op.Leave = true
			default:
				return Envelope{}, fmt.Errorf("%w: client op %d", ErrCorrupt, rest[0])
			}
			rest = rest[1:]
			var id uint32
			if id, rest, err = takeID(rest); err != nil {
				return Envelope{}, err
			}
			op.Client = ClientID(id)
			if op.Group, rest, err = takeName(rest); err != nil {
				return Envelope{}, err
			}
			e.Ops = append(e.Ops, op)
		}
	case KindClientData:
		var id uint32
		if id, rest, err = takeID(rest); err != nil {
			return Envelope{}, err
		}
		e.Client = ClientID(id)
		if id, rest, err = takeID(rest); err != nil {
			return Envelope{}, err
		}
		e.GroupID = GroupID(id)
		//lint:allow wireown decode output views the delivered payload tail; receivers treat delivered messages as immutable
		e.Data = rest
		return e, nil
	case KindClientDataName:
		var id uint32
		if id, rest, err = takeID(rest); err != nil {
			return Envelope{}, err
		}
		e.Client = ClientID(id)
		if e.Group, rest, err = takeName(rest); err != nil {
			return Envelope{}, err
		}
		//lint:allow wireown decode output views the delivered payload tail; receivers treat delivered messages as immutable
		e.Data = rest
		return e, nil
	default:
		return Envelope{}, fmt.Errorf("%w: unknown kind %d", ErrCorrupt, b[0])
	}
	if len(rest) != 0 {
		return Envelope{}, fmt.Errorf("%w: %d trailing bytes after %s", ErrCorrupt, len(rest), e.Kind)
	}
	return e, nil
}

// takeNames decodes a count-prefixed name list.
func takeNames(b []byte) ([]string, []byte, error) {
	n, rest, ok := takeUvarint(b)
	if !ok {
		return nil, nil, ErrTruncated
	}
	// Each name needs at least its length byte.
	if n > uint64(len(rest))+1 {
		return nil, nil, fmt.Errorf("%w: %d names in %d bytes", ErrCorrupt, n, len(rest))
	}
	var out []string
	var err error
	for i := uint64(0); i < n; i++ {
		var name string
		if name, rest, err = takeName(rest); err != nil {
			return nil, nil, err
		}
		out = append(out, name)
	}
	return out, rest, nil
}

// peekData reads the fixed header of a KindData / KindClientData
// payload without touching the body: the membership-filtered fast path.
// Returns ok=false for any other kind or a malformed header.
//
//evs:noalloc
func peekData(b []byte) (client ClientID, gid GroupID, body []byte, ok bool) {
	if len(b) == 0 {
		return 0, 0, nil, false
	}
	rest := b[1:]
	if Kind(b[0]) == KindClientData {
		v, r, ok := takeUvarint(rest)
		if !ok || v > 0xffffffff {
			return 0, 0, nil, false
		}
		client, rest = ClientID(v), r
	} else if Kind(b[0]) != KindData {
		return 0, 0, nil, false
	}
	v, r, ok2 := takeUvarint(rest)
	if !ok2 || v > 0xffffffff {
		return 0, 0, nil, false
	}
	return client, GroupID(v), r, true
}

// appendData encodes a data message into dst (arena-carved by the
// caller): the send-side hot path.
//
//evs:noalloc
func appendData(dst []byte, client ClientID, gid GroupID, data []byte) []byte {
	if client != 0 {
		dst = append(dst, byte(KindClientData))
		dst = appendUvarint(dst, uint64(client))
	} else {
		dst = append(dst, byte(KindData))
	}
	dst = appendUvarint(dst, uint64(gid))
	return append(dst, data...)
}

// appendDataName encodes a data-by-name message into dst.
func appendDataName(dst []byte, client ClientID, name string, data []byte) ([]byte, error) {
	if len(name) > MaxNameLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrNameTooLong, len(name))
	}
	if client != 0 {
		dst = append(dst, byte(KindClientDataName))
		dst = appendUvarint(dst, uint64(client))
	} else {
		dst = append(dst, byte(KindDataName))
	}
	dst = appendUvarint(dst, uint64(len(name)))
	dst = append(dst, name...)
	return append(dst, data...), nil
}

package groups

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/model"
)

// FuzzEnvelopeRoundTrip drives the binary codec with arbitrary bytes:
// whatever decodes must re-encode and decode back to the same
// envelope, the header peek must agree with the full decode on data
// messages, and nothing may panic (the nopanic analyzer polices the
// package; this exercises the claim).
func FuzzEnvelopeRoundTrip(f *testing.F) {
	seed := []Envelope{
		{Kind: KindJoin, Group: "chat"},
		{Kind: KindLeave, Group: ""},
		{Kind: KindAnnounce, Groups: []string{"a", "b"}, ClientSubs: []ClientSub{{Client: 7, Groups: []string{"a"}}}},
		{Kind: KindData, GroupID: 3, Data: []byte("payload")},
		{Kind: KindDataName, Group: "late", Data: []byte("x")},
		{Kind: KindClientOps, Ops: []ClientOp{{Client: 1, Group: "g"}, {Leave: true, Client: 2, Group: "h"}}},
		{Kind: KindClientData, Client: 9, GroupID: 0, Data: nil},
		{Kind: KindClientDataName, Client: 1, Group: "n", Data: []byte("y")},
	}
	for _, e := range seed {
		b, err := Encode(e)
		if err != nil {
			f.Fatalf("seed encode %+v: %v", e, err)
		}
		f.Add(b)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(KindAnnounce), 0xff, 0xff, 0xff, 0xff, 0x0f})

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := Decode(data)
		if err != nil {
			return // corrupt input must error, and did
		}
		b2, err := Encode(env)
		if err != nil {
			t.Fatalf("decoded envelope %+v failed to re-encode: %v", env, err)
		}
		env2, err := Decode(b2)
		if err != nil {
			t.Fatalf("re-encoded envelope failed to decode: %v", err)
		}
		if !reflect.DeepEqual(env, env2) {
			t.Fatalf("round trip diverged:\n%+v\n%+v", env, env2)
		}
		switch env.Kind {
		case KindData, KindClientData:
			client, gid, body, ok := peekData(data)
			if !ok || client != env.Client || gid != env.GroupID {
				t.Fatalf("peek (%d,%d,%v) disagrees with decode %+v", client, gid, ok, env)
			}
			if string(body) != string(env.Data) {
				t.Fatalf("peek body %q != decoded %q", body, env.Data)
			}
		default:
			// The peek must refuse non-data kinds: the fast path may
			// never swallow a control message.
			if _, _, _, ok := peekData(data); ok {
				t.Fatalf("peek accepted control kind %v", env.Kind)
			}
		}
	})
}

// TestSymbolTablesIdenticalUnderPartitions is the differential check
// the replicated symbol table rests on: run a seeded random workload —
// joins, leaves, client batches, by-name sends, and repeated partition
// and merge reconfigurations — and require that within every component,
// every member's interned table is byte-identical after every step.
// (Different components legitimately diverge; each is its own total
// order. The next merge resets and reconverges them.)
func TestSymbolTablesIdenticalUnderPartitions(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			testSymbolChaos(t, seed)
		})
	}
}

func testSymbolChaos(t *testing.T, seed int64) {
	procs := []model.ProcessID{"a", "b", "c", "d", "e", "f"}
	rng := rand.New(rand.NewSource(seed))
	muxes := make(map[model.ProcessID]*Mux, len(procs))
	for _, p := range procs {
		muxes[p] = New(p)
	}
	cfgSeq := uint64(0)

	// components is the current partition of the process set.
	var components [][]model.ProcessID

	installComponent := func(comp []model.ProcessID) {
		cfgSeq++
		cfg := model.Configuration{ID: model.RegularID(cfgSeq, comp[0]), Members: model.NewProcessSet(comp...)}
		type ann struct {
			p model.ProcessID
			b []byte
		}
		var anns []ann
		for _, p := range comp {
			a, _, err := muxes[p].OnConfig(cfg)
			if err != nil {
				t.Fatalf("OnConfig at %s: %v", p, err)
			}
			if a != nil {
				anns = append(anns, ann{p, a})
			}
		}
		for _, a := range anns {
			for _, q := range comp {
				muxes[q].OnDeliver(a.p, a.b)
			}
		}
	}

	repartition := func() {
		shuffled := append([]model.ProcessID(nil), procs...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		k := 1 + rng.Intn(3)
		components = components[:0]
		for i := 0; i < k; i++ {
			lo, hi := i*len(shuffled)/k, (i+1)*len(shuffled)/k
			if lo == hi {
				continue
			}
			comp := shuffled[lo:hi]
			components = append(components, comp)
			installComponent(comp)
		}
	}

	checkComponents := func(step int) {
		for _, comp := range components {
			want := muxes[comp[0]].Symbols().Canonical()
			for _, p := range comp[1:] {
				got := muxes[p].Symbols().Canonical()
				if string(got) != string(want) {
					t.Fatalf("step %d: symbol tables diverged inside component %v:\n%s: %x\n%s: %x",
						step, comp, comp[0], want, p, got)
				}
			}
		}
	}

	repartition()
	names := []string{"g0", "g1", "g2", "g3", "g4", "g5", "g6", "g7"}
	for step := 0; step < 600; step++ {
		comp := components[rng.Intn(len(components))]
		p := comp[rng.Intn(len(comp))]
		m := muxes[p]
		var payload []byte
		var err error
		switch rng.Intn(6) {
		case 0:
			payload, err = m.Join(names[rng.Intn(len(names))])
		case 1:
			payload, err = m.Leave(names[rng.Intn(len(names))])
		case 2:
			payload, err = m.Send(names[rng.Intn(len(names))], []byte("d"))
		case 3:
			payload, err = m.ClientJoin(ClientID(1+rng.Intn(9)), names[rng.Intn(len(names))])
		case 4:
			ops := make([]ClientOp, 0, 3)
			for i := 0; i < 3; i++ {
				ops = append(ops, ClientOp{
					Leave:  rng.Intn(3) == 0,
					Client: ClientID(1 + rng.Intn(9)),
					Group:  names[rng.Intn(len(names))],
				})
			}
			payload, _, err = m.ClientOpsPayload(ops)
		case 5:
			repartition()
			checkComponents(step)
			continue
		}
		if err != nil {
			t.Fatalf("step %d op at %s: %v", step, p, err)
		}
		if payload != nil {
			for _, q := range comp {
				muxes[q].OnDeliver(p, payload)
			}
		}
		checkComponents(step)
	}
	// Final merge: one component again; all six tables reconverge.
	components = [][]model.ProcessID{procs}
	installComponent(procs)
	checkComponents(-1)
	want := muxes[procs[0]].Symbols().Fingerprint()
	for _, p := range procs[1:] {
		if got := muxes[p].Symbols().Fingerprint(); got != want {
			t.Fatalf("post-merge fingerprint at %s: %x != %x", p, got, want)
		}
	}
}

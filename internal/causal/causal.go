// Package causal implements the paper's partial-order alternative: "As an
// alternative to the total ordering algorithm, we can consider an ordering
// algorithm that only imposes a partial order on messages" (Section 2).
//
// The Buffer delivers messages in causal order (cbcast in Isis terms): a
// message is delivered once every message that causally precedes it — per
// its attached vector clock — has been delivered. Messages that are
// causally concurrent deliver in receipt order, which may differ between
// processes; that is exactly the freedom the partial order grants, and
// Specification 5 is the only ordering constraint that still applies.
//
// Causality is local to a single configuration (the paper's Section 2
// treatment): the buffer is created per configuration and discarded at a
// configuration change, mirroring how the EVS recovery algorithm
// terminates causality at membership changes.
package causal

import (
	"repro/internal/model"
	"repro/internal/vclock"
)

// Message is a causally-timestamped message.
type Message struct {
	ID      model.MessageID
	Payload []byte
	// VC is the sender's vector clock at the send: VC[sender] is the
	// send's own tick, and every other component counts the sends this
	// message causally depends on.
	VC vclock.VC
}

// Buffer reorders received messages into causal order for one
// configuration. The zero value is not usable; use New.
type Buffer struct {
	self model.ProcessID
	// delivered[p] counts delivered messages originated by p.
	delivered vclock.VC
	// pending holds messages whose causal predecessors are missing.
	pending []Message
	// out accumulates messages in delivery order.
	out []Message
}

// New creates a buffer for one configuration.
func New(self model.ProcessID) *Buffer {
	return &Buffer{self: self, delivered: vclock.New()}
}

// Send stamps an outgoing message: it ticks the local component on top of
// everything delivered so far and returns the clock to attach. The local
// send also counts as delivered (a process has seen its own message).
func (b *Buffer) Send(id model.MessageID) vclock.VC {
	b.delivered.Tick(b.self)
	return b.delivered.Clone()
}

// deliverable reports whether m's causal predecessors have been delivered:
// every foreign component of m's clock is covered, and m is the next
// message from its sender.
func (b *Buffer) deliverable(m Message) bool {
	for p, t := range m.VC {
		switch p {
		case m.ID.Sender:
			if b.delivered.Get(p)+1 != t {
				return false
			}
		default:
			if b.delivered.Get(p) < t {
				return false
			}
		}
	}
	return true
}

// Receive ingests a received message and returns the messages that become
// deliverable, in causal order. Duplicates (messages already covered by
// the delivered clock) are dropped. The sender's own messages must not be
// passed back in (Send already accounted for them).
func (b *Buffer) Receive(m Message) []Message {
	if m.VC.Get(m.ID.Sender) <= b.delivered.Get(m.ID.Sender) {
		return nil
	}
	for _, p := range b.pending {
		if p.ID == m.ID {
			return nil
		}
	}
	b.pending = append(b.pending, m)
	var out []Message
	progress := true
	for progress {
		progress = false
		for i := 0; i < len(b.pending); i++ {
			p := b.pending[i]
			if !b.deliverable(p) {
				continue
			}
			b.delivered.Merge(p.VC)
			out = append(out, p)
			b.pending = append(b.pending[:i], b.pending[i+1:]...)
			i--
			progress = true
		}
	}
	b.out = append(b.out, out...)
	return out
}

// Pending returns the number of messages blocked on missing predecessors.
func (b *Buffer) Pending() int { return len(b.pending) }

// Delivered returns the messages delivered so far, in delivery order.
func (b *Buffer) Delivered() []Message { return b.out }

// CheckCausal verifies that a delivery sequence respects causal order: no
// message appears before one of its causal predecessors. It returns the
// indices of the first offending pair, or (-1, -1).
func CheckCausal(seq []Message) (int, int) {
	for i := range seq {
		for j := i + 1; j < len(seq); j++ {
			if seq[j].VC.HappenedBefore(seq[i].VC) {
				return i, j
			}
		}
	}
	return -1, -1
}

package causal

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func msg(p model.ProcessID, n uint64) model.MessageID {
	return model.MessageID{Sender: p, SenderSeq: n}
}

func TestDirectDependencyHeld(t *testing.T) {
	// p sends m1; q delivers m1 then sends m2; r receives m2 before m1:
	// m2 must be held until m1 arrives.
	p := New("p")
	q := New("q")
	r := New("r")

	m1 := Message{ID: msg("p", 1)}
	m1.VC = p.Send(m1.ID)

	q.Receive(m1)
	m2 := Message{ID: msg("q", 1)}
	m2.VC = q.Send(m2.ID)

	if out := r.Receive(m2); len(out) != 0 {
		t.Fatalf("m2 delivered before its predecessor: %v", out)
	}
	if r.Pending() != 1 {
		t.Fatalf("pending %d, want 1", r.Pending())
	}
	out := r.Receive(m1)
	if len(out) != 2 || out[0].ID != m1.ID || out[1].ID != m2.ID {
		t.Fatalf("delivery order %v, want m1 then m2", out)
	}
}

func TestConcurrentMessagesDeliverInReceiptOrder(t *testing.T) {
	p := New("p")
	q := New("q")
	r := New("r")
	m1 := Message{ID: msg("p", 1)}
	m1.VC = p.Send(m1.ID)
	m2 := Message{ID: msg("q", 1)}
	m2.VC = q.Send(m2.ID)

	// r receives them in one order; another receiver in the other: both
	// legal under the partial order.
	if out := r.Receive(m2); len(out) != 1 {
		t.Fatalf("concurrent message held: %v", out)
	}
	if out := r.Receive(m1); len(out) != 1 {
		t.Fatalf("concurrent message held: %v", out)
	}
	if i, j := CheckCausal(r.Delivered()); i != -1 {
		t.Fatalf("causal violation at %d,%d", i, j)
	}
}

func TestFIFOPerSender(t *testing.T) {
	p := New("p")
	r := New("r")
	m1 := Message{ID: msg("p", 1)}
	m1.VC = p.Send(m1.ID)
	m2 := Message{ID: msg("p", 2)}
	m2.VC = p.Send(m2.ID)
	if out := r.Receive(m2); len(out) != 0 {
		t.Fatal("second message from one sender delivered before first")
	}
	if out := r.Receive(m1); len(out) != 2 {
		t.Fatalf("cascade failed: %v", out)
	}
}

func TestDuplicateDropped(t *testing.T) {
	p := New("p")
	r := New("r")
	m1 := Message{ID: msg("p", 1)}
	m1.VC = p.Send(m1.ID)
	if out := r.Receive(m1); len(out) != 1 {
		t.Fatal("first copy should deliver")
	}
	if out := r.Receive(m1); out != nil {
		t.Fatalf("duplicate delivered: %v", out)
	}
	// Duplicate while still pending is also dropped.
	m2 := Message{ID: msg("p", 2)}
	m2.VC = p.Send(m2.ID)
	m3 := Message{ID: msg("p", 3)}
	m3.VC = p.Send(m3.ID)
	r.Receive(m3)
	r.Receive(m3)
	if r.Pending() != 1 {
		t.Fatalf("pending %d, want 1 (duplicate of pending dropped)", r.Pending())
	}
}

func TestLongChainCascade(t *testing.T) {
	// A chain p→q→p→q...; deliver everything only when the first link
	// arrives last.
	p := New("p")
	q := New("q")
	var chain []Message
	for i := 0; i < 10; i++ {
		if i%2 == 0 {
			m := Message{ID: msg("p", uint64(i/2+1))}
			m.VC = p.Send(m.ID)
			chain = append(chain, m)
			q.Receive(m)
		} else {
			m := Message{ID: msg("q", uint64(i/2+1))}
			m.VC = q.Send(m.ID)
			chain = append(chain, m)
			p.Receive(m)
		}
	}
	r := New("r")
	for i := len(chain) - 1; i > 0; i-- {
		if out := r.Receive(chain[i]); len(out) != 0 {
			t.Fatalf("link %d delivered early", i)
		}
	}
	out := r.Receive(chain[0])
	if len(out) != len(chain) {
		t.Fatalf("cascade delivered %d of %d", len(out), len(chain))
	}
	for i, m := range out {
		if m.ID != chain[i].ID {
			t.Fatalf("order broken at %d", i)
		}
	}
}

// TestRandomDeliveryOrderAlwaysCausal is the property test: whatever
// receipt order the network produces, delivery respects causality and
// nothing is lost.
func TestRandomDeliveryOrderAlwaysCausal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		senders := []model.ProcessID{"a", "b", "c"}
		bufs := map[model.ProcessID]*Buffer{}
		for _, s := range senders {
			bufs[s] = New(s)
		}
		// Generate a causal web: each sender alternates sending and
		// receiving random prior messages.
		var all []Message
		for i := 0; i < 40; i++ {
			s := senders[rng.Intn(len(senders))]
			// Maybe deliver some prior messages first (creating
			// dependencies).
			for _, m := range all {
				if m.ID.Sender != s && rng.Intn(3) == 0 {
					bufs[s].Receive(m)
				}
			}
			id := msg(s, uint64(len(bufs[s].Delivered()))+bufs[s].delivered.Get(s)+1)
			m := Message{ID: id, VC: bufs[s].Send(id)}
			all = append(all, m)
		}
		// A fresh receiver gets everything in random order.
		r := New("r")
		perm := rng.Perm(len(all))
		for _, i := range perm {
			r.Receive(all[i])
		}
		if r.Pending() != 0 {
			return false
		}
		if len(r.Delivered()) != len(all) {
			return false
		}
		i, j := CheckCausal(r.Delivered())
		return i == -1 && j == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCheckCausalDetectsViolation(t *testing.T) {
	p := New("p")
	q := New("q")
	m1 := Message{ID: msg("p", 1)}
	m1.VC = p.Send(m1.ID)
	q.Receive(m1)
	m2 := Message{ID: msg("q", 1)}
	m2.VC = q.Send(m2.ID)
	// m2 before m1 violates causality.
	if i, j := CheckCausal([]Message{m2, m1}); i != 0 || j != 1 {
		t.Fatalf("CheckCausal = %d,%d, want 0,1", i, j)
	}
}

func TestSenderSeqUniqueInProperty(t *testing.T) {
	// Guard for the generator above: ids must be unique.
	seen := map[model.MessageID]bool{}
	b := New("a")
	for i := 0; i < 5; i++ {
		id := msg("a", b.delivered.Get("a")+1)
		b.Send(id)
		if seen[id] {
			t.Fatalf("duplicate id %v", id)
		}
		seen[id] = true
	}
	_ = fmt.Sprint(seen)
}

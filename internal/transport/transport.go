// Package transport carries encoded protocol messages over real network
// media. It is the boundary the in-process runtimes never crossed: the
// simulator and the live hub hand shared Go structs to every receiver,
// while a Transport here serialises each broadcast through the
// internal/wire binary codec and moves bytes through real sockets — UDP
// unicast fan-out (the LAN profile, lossy like the hardware broadcast
// Totem ran on) or a TCP mesh fallback (for networks that eat UDP).
//
// A Transport implements the medium half of node.Env (node.Transport)
// plus addressing: unicast, the configured peer set, and shutdown. The
// ownership contract is the one documented on node.Transport — messages
// are immutable after handoff — which is what lets a transport encode a
// broadcast once and write the same buffer to every peer, and lets
// decoded messages alias their receive buffers.
//
// Every implementation is instrumented through internal/obs: frames and
// bytes in/out, encode/decode errors, and transport-level drops
// (oversize datagrams, full peer queues). Decode failures are counted
// and dropped, never panicked: a corrupt frame is the network's
// prerogative, and the protocol's retransmission machinery recovers.
package transport

import (
	"encoding/binary"
	"errors"

	"repro/internal/model"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Handler receives one decoded message at the local process. Handlers
// run on the transport's receive goroutines: they must synchronise their
// own state and must not block indefinitely. The message aliases a
// receive buffer owned by the transport's decoder; per the wire
// ownership contract it is immutable and may be retained.
type Handler func(from model.ProcessID, msg wire.Message)

// Transport is a medium for one process of the cluster: the node's
// Broadcast plus addressing and lifecycle. Implementations deliver the
// sender's own broadcasts back to it through the medium (never by
// calling the handler synchronously from Broadcast — the caller may
// hold the node lock).
type Transport interface {
	node.Transport
	// Unicast sends a message to one peer (retransmission traffic that
	// would be wasted on the whole component).
	Unicast(to model.ProcessID, msg wire.Message)
	// Peers returns the configured membership of the local component,
	// sorted, including the local process.
	Peers() []model.ProcessID
	// Close stops the transport: sockets close, goroutines drain, and
	// subsequent sends are dropped (counted).
	Close() error
}

// ErrClosed reports an operation on a closed transport.
var ErrClosed = errors.New("transport: closed")

// A frame is one message on the medium:
//
//	len(sender) sender | encoded message
//
// (TCP additionally length-prefixes each frame on the stream.)

// appendFrame encodes a frame into dst.
func appendFrame(dst []byte, from model.ProcessID, msg wire.Message) ([]byte, error) {
	if len(from) > wire.MaxProcIDLen {
		return nil, wire.ErrUnencodable
	}
	dst = binary.AppendUvarint(dst, uint64(len(from)))
	dst = append(dst, from...)
	return wire.AppendMessage(dst, msg)
}

// splitFrame separates a frame's sender from its message bytes.
func splitFrame(b []byte) (model.ProcessID, []byte, error) {
	n, k := binary.Uvarint(b)
	if k <= 0 || n > wire.MaxProcIDLen || n > uint64(len(b)-k) {
		return "", nil, wire.ErrTruncated
	}
	return model.ProcessID(b[k : k+int(n)]), b[k+int(n):], nil
}

// sortedPeers copies and sorts a peer map's keys.
func sortedPeers(peers map[model.ProcessID]string) []model.ProcessID {
	out := make([]model.ProcessID, 0, len(peers))
	for id := range peers {
		//lint:allow determinism the id set is sorted immediately below
		out = append(out, id)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// countOut records one sent frame of the given size.
func countOut(met *obs.Metrics, n int) {
	met.Inc(obs.CWirePacketsOut)
	met.Add(obs.CWireBytesOut, uint64(n))
}

// countIn records one received frame of the given size.
func countIn(met *obs.Metrics, n int) {
	met.Inc(obs.CWirePacketsIn)
	met.Add(obs.CWireBytesIn, uint64(n))
}

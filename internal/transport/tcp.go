package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"net"
	"sync"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/wire"
)

// TCPConfig configures a TCP mesh transport.
type TCPConfig struct {
	// Self is the local process; Peers maps every cluster member —
	// including Self — to its TCP address ("host:port").
	Self  model.ProcessID
	Peers map[model.ProcessID]string
	// Handler receives decoded messages (required). It runs on
	// per-connection receive goroutines.
	Handler Handler
	// Met is the transport's observability scope (nil disables).
	Met *obs.Metrics
	// QueueLen bounds each peer's outbound queue; a full queue drops
	// (and counts) the frame, keeping the mesh as lossy as UDP so slow
	// peers can't stall the ring. Defaults to 256.
	QueueLen int
	// MaxFrame bounds an encoded frame on the stream; defaults to 16 MiB.
	MaxFrame int
}

// TCP is the mesh fallback for networks that eat UDP: one lazily dialed
// connection per peer, frames length-prefixed on the stream. It remains
// deliberately lossy — a full peer queue or dead connection drops the
// frame and lets the protocol's retransmission machinery recover —
// because EVS assumes an unreliable medium, and faking reliability here
// would only hide partitions from the failure detector. Self-delivery
// dials the local listener over loopback like any other peer.
type TCP struct {
	self    model.ProcessID
	peers   []model.ProcessID
	handler Handler
	met     *obs.Metrics
	maxFr   int
	ln      net.Listener

	mu     sync.Mutex // guards senders, conns, sendBuf, closed
	senders map[model.ProcessID]*tcpSender
	addrs   map[model.ProcessID]string
	// conns is every live connection, inbound readers and outbound
	// sender dials alike. Close severs them all, which is what unblocks
	// a reader parked in Read or a drain goroutine parked in Write.
	conns map[net.Conn]struct{}
	sendBuf []byte
	closed bool
	wg     sync.WaitGroup
}

// tcpSender owns one peer's outbound side: a bounded frame queue drained
// by a goroutine that dials on demand and redials after errors.
type tcpSender struct {
	queue chan []byte
	done  chan struct{}
}

var _ Transport = (*TCP)(nil)

// NewTCP binds the local process's listener and prepares (but does not
// yet dial) every peer. The local address is Peers[Self]; use a ":0"
// port to let the OS pick and read the bound address back with Addr.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	self, ok := cfg.Peers[cfg.Self]
	if !ok {
		return nil, fmt.Errorf("transport: no address for self %q", cfg.Self)
	}
	ln, err := net.Listen("tcp", self)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", self, err)
	}
	t := &TCP{
		self:    cfg.Self,
		peers:   sortedPeers(cfg.Peers),
		handler: cfg.Handler,
		met:     cfg.Met,
		maxFr:   cfg.MaxFrame,
		ln:      ln,
		senders: make(map[model.ProcessID]*tcpSender, len(cfg.Peers)),
		addrs:   make(map[model.ProcessID]string, len(cfg.Peers)),
		conns:   make(map[net.Conn]struct{}),
		sendBuf: make([]byte, 0, 4096),
	}
	if t.maxFr <= 0 {
		t.maxFr = 16 << 20
	}
	qlen := cfg.QueueLen
	if qlen <= 0 {
		qlen = 256
	}
	for id, addr := range cfg.Peers {
		if id == cfg.Self {
			// Dial the listener actually bound (the configured port may
			// have been ":0").
			addr = ln.Addr().String()
		}
		t.addrs[id] = addr
		s := &tcpSender{queue: make(chan []byte, qlen), done: make(chan struct{})}
		t.senders[id] = s
		t.wg.Add(1)
		go t.drain(id, s)
	}
	t.wg.Add(1)
	go t.accept()
	return t, nil
}

// Addr returns the bound local address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

// Peers implements Transport.
func (t *TCP) Peers() []model.ProcessID {
	out := make([]model.ProcessID, len(t.peers))
	copy(out, t.peers)
	return out
}

// Broadcast implements Transport: encode once, enqueue on every peer's
// sender (including self, whose sender dials the local listener).
func (t *TCP) Broadcast(msg wire.Message) {
	t.send(msg, "")
}

// Unicast implements Transport.
func (t *TCP) Unicast(to model.ProcessID, msg wire.Message) {
	t.mu.Lock()
	_, ok := t.senders[to]
	t.mu.Unlock()
	if !ok {
		t.met.Inc(obs.CWireDrops)
		return
	}
	t.send(msg, to)
}

// send encodes msg with its stream length prefix and enqueues the frame
// on one peer's sender (to != "") or on all of them. Enqueued frames are
// freshly allocated — the senders consume them asynchronously.
func (t *TCP) send(msg wire.Message, to model.ProcessID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		t.met.Inc(obs.CWireDrops)
		return
	}
	// Reserve room for the length prefix, then patch it in front of the
	// frame once its size is known.
	body, err := appendFrame(t.sendBuf[:0], t.self, msg)
	if err != nil {
		t.met.Inc(obs.CWireEncodeErrors)
		return
	}
	t.sendBuf = body[:0]
	if len(body) > t.maxFr {
		t.met.Inc(obs.CWireDrops)
		return
	}
	prefixed := binary.AppendUvarint(make([]byte, 0, len(body)+binary.MaxVarintLen64), uint64(len(body)))
	prefixed = append(prefixed, body...)
	if to != "" {
		t.enqueue(to, prefixed)
		return
	}
	for _, id := range t.peers {
		t.enqueue(id, prefixed)
	}
}

// enqueue hands one prepared frame to a peer's sender, dropping if the
// queue is full. Callers hold t.mu, so senders cannot be closed out from
// under us; the frame buffer is shared across peers and never mutated.
func (t *TCP) enqueue(to model.ProcessID, frame []byte) {
	s := t.senders[to]
	select {
	case s.queue <- frame:
	default:
		t.met.Inc(obs.CWireDrops)
	}
}

// drain is a peer's sender goroutine: dial on first frame, write frames
// until an error, drop the connection and redial on the next frame.
func (t *TCP) drain(to model.ProcessID, s *tcpSender) {
	defer t.wg.Done()
	var conn net.Conn
	defer func() {
		if conn != nil {
			t.untrack(conn)
			conn.Close()
		}
	}()
	for {
		select {
		case <-s.done:
			return
		case frame := <-s.queue:
			if conn == nil {
				c, err := net.Dial("tcp", t.addrs[to])
				if err != nil {
					t.met.Inc(obs.CWireDrops)
					continue
				}
				if !t.track(c) {
					// Close raced the dial; the connection was never
					// registered, so sever it here and exit.
					c.Close()
					return
				}
				conn = c
			}
			if _, err := conn.Write(frame); err != nil {
				t.untrack(conn)
				conn.Close()
				conn = nil
				t.met.Inc(obs.CWireDrops)
				continue
			}
			countOut(t.met, len(frame))
		}
	}
}

// track registers a live outbound connection so Close can sever it; it
// reports false when the transport is already closed, in which case the
// caller owns the connection and must close it itself.
func (t *TCP) track(conn net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	t.conns[conn] = struct{}{}
	return true
}

// untrack forgets a connection the owner is about to close.
func (t *TCP) untrack(conn net.Conn) {
	t.mu.Lock()
	delete(t.conns, conn)
	t.mu.Unlock()
}

// accept admits inbound connections; each gets its own reader goroutine.
func (t *TCP) accept() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.read(conn)
	}
}

// read drains one inbound connection: uvarint length prefix, then the
// frame into a fresh buffer (decoded payloads alias it and may be
// retained), decode, hand to the handler. A malformed length or corrupt
// frame beyond repair closes the connection — stream framing is lost —
// while a frame that merely fails message decode is counted and skipped.
func (t *TCP) read(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()
	dec := wire.NewDecoder()
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return // EOF or peer reset
		}
		if n == 0 || n > uint64(t.maxFr) {
			t.met.Inc(obs.CWireDecodeErrors)
			return
		}
		frame := make([]byte, n)
		if _, err := readFull(br, frame); err != nil {
			return
		}
		countIn(t.met, len(frame))
		from, body, err := splitFrame(frame)
		if err != nil {
			t.met.Inc(obs.CWireDecodeErrors)
			continue
		}
		msg, err := dec.Decode(body)
		if err != nil {
			t.met.Inc(obs.CWireDecodeErrors)
			continue
		}
		t.handler(from, msg)
	}
}

// readFull fills buf from r (io.ReadFull without the import churn).
func readFull(r *bufio.Reader, buf []byte) (int, error) {
	got := 0
	for got < len(buf) {
		n, err := r.Read(buf[got:])
		got += n
		if err != nil {
			return got, err
		}
	}
	return got, nil
}

// Close implements Transport.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, s := range t.senders {
		close(s.done)
	}
	// Snapshot under the lock, sever outside it: conn.Close is I/O, and
	// for outbound senders it is the only thing that unblocks a drain
	// goroutine parked in conn.Write on a peer that stopped reading.
	open := make([]net.Conn, 0, len(t.conns))
	for conn := range t.conns {
		//lint:allow determinism teardown order is irrelevant; every snapshot entry is closed
		open = append(open, conn)
	}
	t.mu.Unlock()
	for _, conn := range open {
		conn.Close()
	}
	err := t.ln.Close()
	t.wg.Wait()
	return err
}

package transport

import (
	"fmt"
	"net"
	"sync"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/wire"
)

// UDPConfig configures a UDP transport.
type UDPConfig struct {
	// Self is the local process; Peers maps every cluster member —
	// including Self — to its UDP address ("host:port").
	Self  model.ProcessID
	Peers map[model.ProcessID]string
	// Handler receives decoded messages (required). It runs on the
	// receive goroutine.
	Handler Handler
	// Met is the transport's observability scope (nil disables).
	Met *obs.Metrics
	// MaxDatagram bounds an encoded frame; defaults to 60000 bytes
	// (inside the 65507-byte UDP payload ceiling). Batches beyond it
	// are split and re-sent; single messages beyond it are dropped and
	// counted.
	MaxDatagram int
}

// UDP is the LAN-profile transport: every broadcast is encoded once and
// fanned out as unicast datagrams to the peer list, the real-Totem
// substitute for hardware multicast on networks without it.
// Self-delivery goes through the loopback socket like any other receipt,
// never by a synchronous handler call. The medium is exactly as lossy as
// UDP: drops, reorders and duplicates are the protocol's problem, which
// is the point.
type UDP struct {
	self    model.ProcessID
	peers   []model.ProcessID
	addrs   map[model.ProcessID]*net.UDPAddr
	conn    *net.UDPConn
	handler Handler
	met     *obs.Metrics
	maxDG   int

	mu     sync.Mutex // guards sendBuf and closed
	sendBuf []byte
	closed bool
	wg     sync.WaitGroup
}

var _ Transport = (*UDP)(nil)

// NewUDP binds the local process's socket and resolves every peer. The
// local address is Peers[Self]; use a ":0" port to let the OS pick and
// read the bound address back with Addr.
func NewUDP(cfg UDPConfig) (*UDP, error) {
	self, ok := cfg.Peers[cfg.Self]
	if !ok {
		return nil, fmt.Errorf("transport: no address for self %q", cfg.Self)
	}
	laddr, err := net.ResolveUDPAddr("udp", self)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %s: %w", self, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", self, err)
	}
	t := &UDP{
		self:    cfg.Self,
		peers:   sortedPeers(cfg.Peers),
		addrs:   make(map[model.ProcessID]*net.UDPAddr, len(cfg.Peers)),
		conn:    conn,
		handler: cfg.Handler,
		met:     cfg.Met,
		maxDG:   cfg.MaxDatagram,
		sendBuf: make([]byte, 0, 4096),
	}
	if t.maxDG <= 0 {
		t.maxDG = 60000
	}
	for id, addr := range cfg.Peers {
		if id == cfg.Self {
			// Send self-deliveries to the socket actually bound (the
			// configured port may have been ":0").
			t.addrs[id] = conn.LocalAddr().(*net.UDPAddr)
			continue
		}
		a, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("transport: resolve %s for %s: %w", addr, id, err)
		}
		t.addrs[id] = a
	}
	t.wg.Add(1)
	go t.receive()
	return t, nil
}

// Addr returns the bound local address.
func (t *UDP) Addr() string { return t.conn.LocalAddr().String() }

// Peers implements Transport.
func (t *UDP) Peers() []model.ProcessID {
	out := make([]model.ProcessID, len(t.peers))
	copy(out, t.peers)
	return out
}

// Broadcast implements Transport: encode once, one datagram per peer
// (including self, through the loopback socket).
func (t *UDP) Broadcast(msg wire.Message) {
	t.send(msg, "")
}

// Unicast implements Transport.
func (t *UDP) Unicast(to model.ProcessID, msg wire.Message) {
	if _, ok := t.addrs[to]; !ok {
		t.met.Inc(obs.CWireDrops)
		return
	}
	t.send(msg, to)
}

// send encodes msg and writes it to one peer (to != "") or all peers.
// An encoded batch larger than the datagram ceiling is split in half and
// re-sent — batching is pure packing, so the split preserves semantics.
func (t *UDP) send(msg wire.Message, to model.ProcessID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	//lint:allow lockheld UDP datagram writes drop on a full socket buffer rather than block; the lock serializes sendBuf reuse
	t.sendLocked(msg, to)
}

func (t *UDP) sendLocked(msg wire.Message, to model.ProcessID) {
	if t.closed {
		t.met.Inc(obs.CWireDrops)
		return
	}
	frame, err := appendFrame(t.sendBuf[:0], t.self, msg)
	if err != nil {
		t.met.Inc(obs.CWireEncodeErrors)
		return
	}
	t.sendBuf = frame[:0]
	if len(frame) > t.maxDG {
		if batch, ok := msg.(wire.DataBatch); ok && len(batch.Msgs) > 1 {
			half := len(batch.Msgs) / 2
			t.sendLocked(wire.DataBatch{Ring: batch.Ring, Msgs: batch.Msgs[:half]}, to) //lint:allow wireown half-split sub-batches are encoded immediately and never retained
			t.sendLocked(wire.DataBatch{Ring: batch.Ring, Msgs: batch.Msgs[half:]}, to) //lint:allow wireown half-split sub-batches are encoded immediately and never retained
			return
		}
		t.met.Inc(obs.CWireDrops)
		return
	}
	if to != "" {
		t.write(frame, to)
		return
	}
	for _, id := range t.peers {
		t.write(frame, id)
	}
}

// write sends one prepared frame to one peer.
func (t *UDP) write(frame []byte, to model.ProcessID) {
	if _, err := t.conn.WriteToUDP(frame, t.addrs[to]); err != nil {
		t.met.Inc(obs.CWireDrops)
		return
	}
	countOut(t.met, len(frame))
}

// receive drains the socket: each datagram is copied into a fresh
// right-sized buffer (decoded payloads alias it and may be retained),
// decoded, and handed to the handler. Corrupt frames are counted and
// dropped.
func (t *UDP) receive() {
	defer t.wg.Done()
	dec := wire.NewDecoder()
	readBuf := make([]byte, 65536)
	for {
		n, _, err := t.conn.ReadFromUDP(readBuf)
		if err != nil {
			return // socket closed
		}
		frame := make([]byte, n)
		copy(frame, readBuf[:n])
		countIn(t.met, n)
		from, body, err := splitFrame(frame)
		if err != nil {
			t.met.Inc(obs.CWireDecodeErrors)
			continue
		}
		msg, err := dec.Decode(body)
		if err != nil {
			t.met.Inc(obs.CWireDecodeErrors)
			continue
		}
		t.handler(from, msg)
	}
}

// Close implements Transport.
func (t *UDP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.conn.Close()
	t.wg.Wait()
	return err
}

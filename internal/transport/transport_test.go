package transport

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/wire"
)

// sink collects delivered messages from a transport's receive goroutines.
type sink struct {
	mu   sync.Mutex
	msgs []wire.Message
	from []model.ProcessID
}

func (s *sink) handle(from model.ProcessID, msg wire.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.from = append(s.from, from)
	s.msgs = append(s.msgs, msg)
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

// waitCount polls until the sink holds at least n messages.
func waitCount(t *testing.T, s *sink, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d messages, have %d", n, s.count())
		}
		time.Sleep(time.Millisecond)
	}
}

func testData(payload string) wire.Data {
	return wire.Data{
		ID:      model.MessageID{Sender: "p1", SenderSeq: 7},
		Ring:    model.ConfigID{Kind: model.Regular, Seq: 3, Rep: "p1"},
		Seq:     42,
		Service: model.Agreed,
		Payload: []byte(payload),
	}
}

// kind abstracts the two real transports for the shared conformance tests.
type maker func(t *testing.T, self model.ProcessID, peers map[model.ProcessID]string,
	h Handler, met *obs.Metrics) (Transport, string)

func makeUDP(t *testing.T, self model.ProcessID, peers map[model.ProcessID]string,
	h Handler, met *obs.Metrics) (Transport, string) {
	t.Helper()
	tr, err := NewUDP(UDPConfig{Self: self, Peers: peers, Handler: h, Met: met})
	if err != nil {
		t.Fatalf("NewUDP(%s): %v", self, err)
	}
	return tr, tr.Addr()
}

func makeTCP(t *testing.T, self model.ProcessID, peers map[model.ProcessID]string,
	h Handler, met *obs.Metrics) (Transport, string) {
	t.Helper()
	tr, err := NewTCP(TCPConfig{Self: self, Peers: peers, Handler: h, Met: met})
	if err != nil {
		t.Fatalf("NewTCP(%s): %v", self, err)
	}
	return tr, tr.Addr()
}

// buildMesh starts n transports on loopback with each other as peers.
// Each transport is created with ":0" for unknown peers first, then we
// need real addresses up front — so bind in two passes: reserve
// addresses by binding, close, rebind. Simpler: bind each transport with
// only itself at ":0", which transports don't support. Instead, pre-pick
// ports by binding throwaway listeners.
func reserveAddrs(t *testing.T, ids []model.ProcessID, network string) map[model.ProcessID]string {
	t.Helper()
	addrs := make(map[model.ProcessID]string, len(ids))
	for _, id := range ids {
		switch network {
		case "udp":
			conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				t.Fatalf("reserve udp addr: %v", err)
			}
			addrs[id] = conn.LocalAddr().String()
			conn.Close()
		case "tcp":
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatalf("reserve tcp addr: %v", err)
			}
			addrs[id] = ln.Addr().String()
			ln.Close()
		}
	}
	return addrs
}

func testBroadcastReachesAll(t *testing.T, network string, mk maker) {
	ids := []model.ProcessID{"p1", "p2", "p3"}
	addrs := reserveAddrs(t, ids, network)
	sinks := make(map[model.ProcessID]*sink, len(ids))
	trs := make(map[model.ProcessID]Transport, len(ids))
	for _, id := range ids {
		s := &sink{}
		sinks[id] = s
		tr, _ := mk(t, id, addrs, s.handle, obs.New(string(id), nil))
		trs[id] = tr
		defer tr.Close()
	}
	trs["p1"].Broadcast(testData("hello"))
	for _, id := range ids {
		waitCount(t, sinks[id], 1)
	}
	for _, id := range ids {
		s := sinks[id]
		s.mu.Lock()
		if s.from[0] != "p1" {
			t.Errorf("%s: got sender %q, want p1", id, s.from[0])
		}
		d, ok := s.msgs[0].(wire.Data)
		if !ok || string(d.Payload) != "hello" || d.Seq != 42 {
			t.Errorf("%s: got %#v", id, s.msgs[0])
		}
		s.mu.Unlock()
	}
}

func testUnicastReachesOne(t *testing.T, network string, mk maker) {
	ids := []model.ProcessID{"p1", "p2", "p3"}
	addrs := reserveAddrs(t, ids, network)
	sinks := make(map[model.ProcessID]*sink, len(ids))
	trs := make(map[model.ProcessID]Transport, len(ids))
	for _, id := range ids {
		s := &sink{}
		sinks[id] = s
		tr, _ := mk(t, id, addrs, s.handle, obs.New(string(id), nil))
		trs[id] = tr
		defer tr.Close()
	}
	trs["p1"].Unicast("p2", testData("direct"))
	waitCount(t, sinks["p2"], 1)
	// Give stray fan-out (a bug) a moment to surface.
	time.Sleep(50 * time.Millisecond)
	if n := sinks["p1"].count(); n != 0 {
		t.Errorf("p1 received %d messages from a unicast to p2", n)
	}
	if n := sinks["p3"].count(); n != 0 {
		t.Errorf("p3 received %d messages from a unicast to p2", n)
	}
}

func testPeersSorted(t *testing.T, network string, mk maker) {
	ids := []model.ProcessID{"p3", "p1", "p2"}
	addrs := reserveAddrs(t, ids, network)
	s := &sink{}
	tr, _ := mk(t, "p1", addrs, s.handle, nil)
	defer tr.Close()
	got := tr.Peers()
	want := []model.ProcessID{"p1", "p2", "p3"}
	if len(got) != len(want) {
		t.Fatalf("Peers() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Peers() = %v, want %v", got, want)
		}
	}
}

func testCloseIdempotent(t *testing.T, network string, mk maker) {
	ids := []model.ProcessID{"p1"}
	addrs := reserveAddrs(t, ids, network)
	met := obs.New("p1", nil)
	s := &sink{}
	tr, _ := mk(t, "p1", addrs, s.handle, met)
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Sends after close drop and count, never panic.
	tr.Broadcast(testData("late"))
	if met.Counter(obs.CWireDrops) == 0 {
		t.Errorf("post-close broadcast was not counted as a drop")
	}
}

func TestUDPBroadcastReachesAll(t *testing.T) { testBroadcastReachesAll(t, "udp", makeUDP) }
func TestTCPBroadcastReachesAll(t *testing.T) { testBroadcastReachesAll(t, "tcp", makeTCP) }
func TestUDPUnicastReachesOne(t *testing.T)   { testUnicastReachesOne(t, "udp", makeUDP) }
func TestTCPUnicastReachesOne(t *testing.T)   { testUnicastReachesOne(t, "tcp", makeTCP) }
func TestUDPPeersSorted(t *testing.T)         { testPeersSorted(t, "udp", makeUDP) }
func TestTCPPeersSorted(t *testing.T)         { testPeersSorted(t, "tcp", makeTCP) }
func TestUDPCloseIdempotent(t *testing.T)     { testCloseIdempotent(t, "udp", makeUDP) }
func TestTCPCloseIdempotent(t *testing.T)     { testCloseIdempotent(t, "tcp", makeTCP) }

// TestUDPCorruptFrameCounted fires raw garbage and corrupted real frames
// at a UDP transport's socket: every one must be counted as a decode
// error and dropped, none may panic or reach the handler.
func TestUDPCorruptFrameCounted(t *testing.T) {
	ids := []model.ProcessID{"p1"}
	addrs := reserveAddrs(t, ids, "udp")
	met := obs.New("p1", nil)
	s := &sink{}
	tr, addr := makeUDP(t, "p1", addrs, s.handle, met)
	defer tr.Close()

	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	good, err := appendFrame(nil, "px", testData("x"))
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]byte{
		{0xff, 0xff, 0xff},            // garbage
		good[:len(good)-3],            // truncated
		append([]byte{0x80}, good...), // mangled sender length
	}
	flip := append([]byte(nil), good...)
	flip[len(flip)/2] ^= 0x40
	bad = append(bad, flip)

	sent := 0
	for _, b := range bad {
		if _, err := conn.Write(b); err != nil {
			t.Fatal(err)
		}
		sent++
	}
	// A flipped bit mid-frame may still decode (payload bytes); require
	// every frame to be either delivered or counted, and the guaranteed
	// corruptions to be counted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		errs := met.Counter(obs.CWireDecodeErrors)
		if int(errs)+s.count() >= sent && errs >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("decode errors %d + delivered %d, want %d total with >= 3 errors",
				errs, s.count(), sent)
		}
		time.Sleep(time.Millisecond)
	}
	// A good frame still gets through afterwards.
	if _, err := conn.Write(good); err != nil {
		t.Fatal(err)
	}
	waitCount(t, s, s.count()+1)
}

// TestTCPCorruptFrameCounted writes a corrupt length-prefixed frame to a
// TCP transport's listener: counted, dropped, no panic — and the
// connection keeps working for subsequent well-formed frames.
func TestTCPCorruptFrameCounted(t *testing.T) {
	ids := []model.ProcessID{"p1"}
	addrs := reserveAddrs(t, ids, "tcp")
	met := obs.New("p1", nil)
	s := &sink{}
	tr, addr := makeTCP(t, "p1", addrs, s.handle, met)
	defer tr.Close()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Well-formed length prefix, corrupt frame body.
	junk := []byte{0xff, 0xfe, 0xfd, 0xfc}
	buf := binary.AppendUvarint(nil, uint64(len(junk)))
	buf = append(buf, junk...)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for met.Counter(obs.CWireDecodeErrors) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("corrupt frame never counted as decode error")
		}
		time.Sleep(time.Millisecond)
	}
	// Framing survived: a good frame on the same connection delivers.
	good, err := appendFrame(nil, "px", testData("after"))
	if err != nil {
		t.Fatal(err)
	}
	buf = binary.AppendUvarint(buf[:0], uint64(len(good)))
	buf = append(buf, good...)
	if _, err := conn.Write(buf); err != nil {
		t.Fatal(err)
	}
	waitCount(t, s, 1)
	if s.count() != 1 {
		t.Fatalf("delivered %d messages, want 1", s.count())
	}
}

// TestUDPOversizeBatchSplits broadcasts a batch whose encoding exceeds
// the datagram ceiling: it must arrive as multiple smaller batches
// covering the same messages, in order.
func TestUDPOversizeBatchSplits(t *testing.T) {
	ids := []model.ProcessID{"p1"}
	addrs := reserveAddrs(t, ids, "udp")
	met := obs.New("p1", nil)
	s := &sink{}
	tr, err := NewUDP(UDPConfig{
		Self: "p1", Peers: addrs, Handler: s.handle, Met: met, MaxDatagram: 512,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	ring := model.ConfigID{Kind: model.Regular, Seq: 1, Rep: "p1"}
	var msgs []wire.Data
	for i := 0; i < 8; i++ {
		d := testData("0123456789012345678901234567890123456789012345678901234567890123")
		d.Seq = uint64(i + 1)
		d.Ring = ring
		msgs = append(msgs, d)
	}
	tr.Broadcast(wire.DataBatch{Ring: ring, Msgs: msgs})

	// Count the Data messages across however many batches arrive.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		total := 0
		batches := len(s.msgs)
		for _, m := range s.msgs {
			if b, ok := m.(wire.DataBatch); ok {
				total += len(b.Msgs)
			}
		}
		s.mu.Unlock()
		if total == len(msgs) {
			if batches < 2 {
				t.Fatalf("oversize batch arrived in %d datagrams, want >= 2", batches)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("got %d of %d batched messages", total, len(msgs))
		}
		time.Sleep(time.Millisecond)
	}
	// Reassemble and check order.
	s.mu.Lock()
	var got []uint64
	for _, m := range s.msgs {
		for _, d := range m.(wire.DataBatch).Msgs {
			got = append(got, d.Seq)
		}
	}
	s.mu.Unlock()
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("reassembled seqs %v out of order", got)
		}
	}
}

// TestUDPOversizeSingleDropped broadcasts one unsplittable oversize
// message: dropped and counted, not sent.
func TestUDPOversizeSingleDropped(t *testing.T) {
	ids := []model.ProcessID{"p1"}
	addrs := reserveAddrs(t, ids, "udp")
	met := obs.New("p1", nil)
	s := &sink{}
	tr, err := NewUDP(UDPConfig{
		Self: "p1", Peers: addrs, Handler: s.handle, Met: met, MaxDatagram: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	big := testData(string(make([]byte, 4096)))
	tr.Broadcast(big)
	if met.Counter(obs.CWireDrops) == 0 {
		t.Fatal("oversize single message not counted as a drop")
	}
	time.Sleep(20 * time.Millisecond)
	if s.count() != 0 {
		t.Fatalf("oversize message was delivered")
	}
}

// TestCountersMove sanity-checks the obs plumbing: bytes/packets in and
// out advance on a delivered broadcast.
func TestCountersMove(t *testing.T) {
	ids := []model.ProcessID{"p1", "p2"}
	addrs := reserveAddrs(t, ids, "udp")
	mets := map[model.ProcessID]*obs.Metrics{}
	sinks := map[model.ProcessID]*sink{}
	for _, id := range ids {
		mets[id] = obs.New(string(id), nil)
		sinks[id] = &sink{}
	}
	var trs []Transport
	for _, id := range ids {
		tr, err := NewUDP(UDPConfig{Self: id, Peers: addrs, Handler: sinks[id].handle, Met: mets[id]})
		if err != nil {
			t.Fatal(err)
		}
		trs = append(trs, tr)
		defer tr.Close()
	}
	trs[0].Broadcast(testData("count me"))
	waitCount(t, sinks["p2"], 1)
	m1, m2 := mets["p1"], mets["p2"]
	if m1.Counter(obs.CWirePacketsOut) != 2 { // self + p2
		t.Errorf("p1 packets out = %d, want 2", m1.Counter(obs.CWirePacketsOut))
	}
	if m1.Counter(obs.CWireBytesOut) == 0 {
		t.Error("p1 bytes out = 0")
	}
	if m2.Counter(obs.CWirePacketsIn) != 1 {
		t.Errorf("p2 packets in = %d, want 1", m2.Counter(obs.CWirePacketsIn))
	}
	if m2.Counter(obs.CWireBytesIn) != m1.Counter(obs.CWireBytesOut)/2 {
		t.Errorf("p2 bytes in = %d, p1 bytes out = %d (want half)",
			m2.Counter(obs.CWireBytesIn), m1.Counter(obs.CWireBytesOut))
	}
}

// TestFrameRoundTrip exercises the frame helpers directly.
func TestFrameRoundTrip(t *testing.T) {
	msg := testData("frame me")
	b, err := appendFrame(nil, "proc-with-a-long-name", msg)
	if err != nil {
		t.Fatal(err)
	}
	from, body, err := splitFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if from != "proc-with-a-long-name" {
		t.Fatalf("sender = %q", from)
	}
	got, err := wire.Decode(body)
	if err != nil {
		t.Fatal(err)
	}
	d := got.(wire.Data)
	if string(d.Payload) != "frame me" {
		t.Fatalf("payload = %q", d.Payload)
	}
	// Truncations never succeed with stray state.
	for i := 0; i < len(b); i++ {
		if _, _, err := splitFrame(b[:i]); err == nil {
			if _, err := wire.Decode(body[:0]); err == nil {
				t.Fatalf("truncated frame at %d decoded", i)
			}
		}
	}
}

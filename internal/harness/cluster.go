// Package harness runs complete EVS clusters deterministically: it wires
// nodes to the simulated broadcast medium and the discrete-event scheduler,
// applies scenario actions (partitions, merges, crashes, recoveries, client
// traffic) at virtual times, and captures the global event history for the
// specification checker.
package harness

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stable"
	"repro/internal/wire"
)

// Options configure a cluster.
type Options struct {
	// IDs are the process identifiers; defaults to p1..pN via Procs.
	IDs []model.ProcessID
	// Procs is the process count used when IDs is empty.
	Procs int
	// Seed drives the simulated network.
	Seed int64
	// Net overrides the network profile (defaults to netsim.Default).
	Net *netsim.Config
	// Node overrides protocol timing (defaults to node.DefaultConfig).
	Node *node.Config
	// Stream, when set, attaches an inline specification checker: every
	// traced event is fed to it as it happens, certifying the run
	// incrementally instead of post-hoc (see spec.Stream).
	Stream *spec.StreamOptions
	// DropHistory stops the cluster from retaining the full event
	// history. With Stream set it is what makes arbitrarily long soaks
	// memory-bounded; without Stream it turns the run into a pure
	// measurement (benchmarks that only read counters). Check cannot be
	// used on a cluster that drops its history; use the stream's verdict
	// (or metrics) instead.
	DropHistory bool
	// DropDeliveries stops the cluster from retaining per-process delivery
	// slices. OnDeliver still fires for every delivery, and DeliveryCount
	// keeps an exact count, so saturating benchmarks stay O(1) in memory
	// per message. Deliveries returns nil for every process when set.
	DropDeliveries bool
}

// Cluster is a deterministic in-memory EVS deployment.
type Cluster struct {
	Sched   *sim.Scheduler
	Net     *netsim.Network
	History *spec.History

	stream         *spec.Stream
	dropHistory    bool
	dropDeliveries bool
	eventCount     uint64

	ids          []model.ProcessID
	nodes        map[model.ProcessID]*node.Node
	stores       map[model.ProcessID]*stable.Store
	envs         map[model.ProcessID]*env
	deliver      map[model.ProcessID][]node.Delivery
	deliverCount map[model.ProcessID]uint64
	configs      map[model.ProcessID][]model.Configuration
	metrics      map[model.ProcessID]*obs.Metrics
	netMet       *obs.Metrics
	stats        Stats
	// dropKinds holds the active message-class loss rules, consulted by
	// the netsim filter installed on first use (see faults.go).
	dropKinds map[dropKey]map[string]bool
	// OnDeliver and OnConfig, when set, observe every application-level
	// event (used by the primary-component and VS layers).
	OnDeliver func(p model.ProcessID, d node.Delivery)
	OnConfig  func(p model.ProcessID, c node.ConfigChange)
	// OnWire, when set, observes every transmitted message (used for
	// traffic accounting and debugging).
	OnWire func(from model.ProcessID, msg wire.Message)
}

// env adapts the harness to node.Env for one process.
type env struct {
	c      *Cluster
	id     model.ProcessID
	timers map[node.TimerKind]sim.Timer
}

var (
	_ node.Env     = (*env)(nil)
	_ sim.OpTarget = (*env)(nil)
)

func (e *env) Broadcast(msg wire.Message) {
	if e.c.OnWire != nil {
		e.c.OnWire(e.id, msg)
	}
	e.c.Net.Broadcast(e.id, msg)
}

func (e *env) SetTimer(kind node.TimerKind, d time.Duration) {
	e.timers[kind].Cancel()
	e.timers[kind] = e.c.Sched.AfterOp(d, sim.Op{Target: e, Kind: uint8(kind)})
}

// RunOp fires a timer event scheduled by SetTimer (closure-free hot path).
func (e *env) RunOp(op sim.Op, _ time.Duration) {
	e.c.nodes[e.id].OnTimer(node.TimerKind(op.Kind))
}

func (e *env) CancelTimer(kind node.TimerKind) {
	if t, ok := e.timers[kind]; ok {
		t.Cancel()
		delete(e.timers, kind)
	}
}

func (e *env) Deliver(d node.Delivery) {
	e.c.deliverCount[e.id]++
	if !e.c.dropDeliveries {
		e.c.deliver[e.id] = append(e.c.deliver[e.id], d)
	}
	if e.c.OnDeliver != nil {
		e.c.OnDeliver(e.id, d)
	}
}

func (e *env) DeliverConfig(cc node.ConfigChange) {
	e.c.configs[e.id] = append(e.c.configs[e.id], cc.Config)
	if e.c.OnConfig != nil {
		e.c.OnConfig(e.id, cc)
	}
}

func (e *env) Trace(ev model.Event) {
	e.c.eventCount++
	if e.c.stream != nil {
		e.c.stream.Add(ev)
	}
	if !e.c.dropHistory {
		e.c.History.Append(ev)
	}
}

// New builds a cluster; processes boot at time zero.
func New(opts Options) *Cluster {
	ids := opts.IDs
	if len(ids) == 0 {
		n := opts.Procs
		if n <= 0 {
			n = 3
		}
		for i := 0; i < n; i++ {
			ids = append(ids, model.ProcessID(fmt.Sprintf("p%02d", i+1)))
		}
	}
	netCfg := netsim.Default(opts.Seed)
	if opts.Net != nil {
		netCfg = *opts.Net
		netCfg.Seed = opts.Seed
	}
	nodeCfg := node.DefaultConfig()
	if opts.Node != nil {
		nodeCfg = *opts.Node
	}

	c := &Cluster{
		Sched:          &sim.Scheduler{},
		History:        &spec.History{},
		dropHistory:    opts.DropHistory,
		dropDeliveries: opts.DropDeliveries,
		ids:            ids,
		nodes:          make(map[model.ProcessID]*node.Node, len(ids)),
		stores:         make(map[model.ProcessID]*stable.Store, len(ids)),
		envs:           make(map[model.ProcessID]*env, len(ids)),
		deliver:        make(map[model.ProcessID][]node.Delivery, len(ids)),
		deliverCount:   make(map[model.ProcessID]uint64, len(ids)),
		configs:        make(map[model.ProcessID][]model.Configuration, len(ids)),
		metrics:        make(map[model.ProcessID]*obs.Metrics, len(ids)),
	}
	if opts.Stream != nil {
		c.stream = spec.NewStream(*opts.Stream)
	}
	clock := func() time.Duration { return c.Sched.Now() }
	c.Net = netsim.New(c.Sched, netCfg)
	c.netMet = obs.New("net", clock)
	c.Net.SetMetrics(c.netMet)
	for _, id := range ids {
		id := id
		e := &env{c: c, id: id, timers: make(map[node.TimerKind]sim.Timer)}
		c.envs[id] = e
		c.stores[id] = &stable.Store{}
		c.nodes[id] = node.New(id, nodeCfg, e, e, c.stores[id])
		c.metrics[id] = obs.New(string(id), clock)
		c.nodes[id].SetMetrics(c.metrics[id])
		c.Net.Register(id, func(from model.ProcessID, payload any, _ time.Duration) {
			msg, ok := payload.(wire.Message)
			if !ok {
				return
			}
			c.nodes[id].OnMessage(from, msg)
		})
	}
	// Boot all processes at time zero.
	for _, id := range ids {
		id := id
		c.Sched.At(0, func(time.Duration) { c.nodes[id].Start() })
	}
	return c
}

// Stream returns the inline checker attached via Options.Stream, or nil.
func (c *Cluster) Stream() *spec.Stream { return c.stream }

// EventCount returns the number of events traced so far, maintained
// even when the history itself is dropped (DropHistory): it is the
// global event index streaming violations anchor to.
func (c *Cluster) EventCount() uint64 { return c.eventCount }

// IDs returns the process identifiers.
func (c *Cluster) IDs() []model.ProcessID {
	out := make([]model.ProcessID, len(c.ids))
	copy(out, c.ids)
	return out
}

// Node returns the node for a process.
func (c *Cluster) Node(id model.ProcessID) *node.Node { return c.nodes[id] }

// Store returns a process's stable storage.
func (c *Cluster) Store(id model.ProcessID) *stable.Store { return c.stores[id] }

// Deliveries returns the messages delivered to a process's application, in
// order. Nil for every process when DropDeliveries is set.
func (c *Cluster) Deliveries(id model.ProcessID) []node.Delivery {
	return c.deliver[id]
}

// DeliveryCount returns the number of application deliveries to a process,
// maintained even when the delivery slices are dropped (DropDeliveries).
func (c *Cluster) DeliveryCount(id model.ProcessID) uint64 {
	return c.deliverCount[id]
}

// Configs returns the configuration changes delivered to a process's
// application, in order.
func (c *Cluster) Configs(id model.ProcessID) []model.Configuration {
	return c.configs[id]
}

// Metrics returns a process's observability scope.
func (c *Cluster) Metrics(id model.ProcessID) *obs.Metrics { return c.metrics[id] }

// NetMetrics returns the cluster-level scope mirroring the medium's stats.
func (c *Cluster) NetMetrics() *obs.Metrics { return c.netMet }

// MetricsSnapshot freezes every scope — one per process plus the "net"
// medium scope — into a cluster snapshot.
func (c *Cluster) MetricsSnapshot() obs.ClusterSnapshot {
	scopes := make([]*obs.Metrics, 0, len(c.ids)+1)
	for _, id := range c.ids {
		scopes = append(scopes, c.metrics[id])
	}
	scopes = append(scopes, c.netMet)
	return obs.Cluster(scopes...)
}

// ObsEvents returns every scope's retained trace events merged into one
// time-ordered stream.
func (c *Cluster) ObsEvents() []obs.Event {
	scopes := make([]*obs.Metrics, 0, len(c.ids)+1)
	for _, id := range c.ids {
		scopes = append(scopes, c.metrics[id])
	}
	scopes = append(scopes, c.netMet)
	return obs.MergeEvents(scopes...)
}

// At schedules an action at an absolute virtual time.
func (c *Cluster) At(t time.Duration, fn func()) {
	c.Sched.At(t, func(time.Duration) { fn() })
}

// Send schedules a client submission at time t. Submission errors (process
// down) are scenario-expected; they are counted in Stats rather than
// discarded, so scenarios can assert on rejected traffic.
func (c *Cluster) Send(t time.Duration, id model.ProcessID, payload string, svc model.Service) {
	c.At(t, func() {
		if err := c.nodes[id].Submit([]byte(payload), svc); err != nil {
			if errors.Is(err, node.ErrBacklog) {
				c.stats.Backlogged++
			} else {
				c.stats.Rejected++
			}
			return
		}
		c.stats.Submitted++
	})
}

// Partition schedules a network partition at time t.
func (c *Cluster) Partition(t time.Duration, groups ...[]model.ProcessID) {
	c.At(t, func() { c.Net.Partition(groups...) })
}

// Merge schedules a full network merge at time t.
func (c *Cluster) Merge(t time.Duration) {
	c.At(t, func() { c.Net.Merge() })
}

// Crash schedules a process failure at time t.
func (c *Cluster) Crash(t time.Duration, id model.ProcessID) {
	c.At(t, func() {
		c.nodes[id].Crash()
		c.Net.SetDown(id, true)
	})
}

// Recover schedules a process recovery (stable storage intact) at time t.
func (c *Cluster) Recover(t time.Duration, id model.ProcessID) {
	c.At(t, func() {
		c.Net.SetDown(id, false)
		c.nodes[id].Recover()
	})
}

// Run advances the simulation to the given absolute time.
func (c *Cluster) Run(until time.Duration) {
	c.Sched.RunUntil(until)
}

// Check runs the specification checker over the captured history.
func (c *Cluster) Check(opts spec.Options) []spec.Violation {
	return spec.NewChecker(c.History.Events(), opts).CheckAll()
}

// OperationalConfigIDs returns the distinct regular configurations
// currently installed across live processes.
func (c *Cluster) OperationalConfigIDs() map[model.ConfigID]model.ProcessSet {
	out := make(map[model.ConfigID]model.ProcessSet)
	for _, id := range c.ids {
		n := c.nodes[id]
		if n.Mode() == node.Operational {
			cfg := n.CurrentConfig()
			out[cfg.ID] = out[cfg.ID].Add(id)
		}
	}
	return out
}

package harness

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/spec"
)

// These tests aim timing at the protocol's most delicate windows: the
// recovery algorithm between the membership change and Step 6, the commit
// phase of the membership consensus, and the moment of installation. The
// crash/partition offsets sweep across the window so some run lands inside
// each phase regardless of timing drift.

// TestCrashDuringRecoveryWindow partitions the group and then crashes a
// surviving member at offsets sweeping across the failure-detection and
// recovery window. Interrupted recoveries must restart (Step 2) and the
// final history must satisfy every specification — including obligation
// handling (Specification 7.1's hard case).
func TestCrashDuringRecoveryWindow(t *testing.T) {
	for _, offsetMs := range []int{1, 5, 15, 30, 41, 45, 55, 70, 90} {
		offsetMs := offsetMs
		t.Run(fmt.Sprintf("offset=%dms", offsetMs), func(t *testing.T) {
			c := New(Options{Procs: 5, Seed: int64(1000 + offsetMs)})
			ids := c.IDs()
			// Safe traffic so there is a backlog to recover.
			for i := 0; i < 8; i++ {
				c.Send(time.Duration(150+i*10)*time.Millisecond, ids[i%5], fmt.Sprintf("m%d", i), model.Safe)
			}
			cut := 300 * time.Millisecond
			c.Partition(cut, ids[:4], ids[4:])
			// Crash a member of the surviving majority inside the
			// reconfiguration window that the partition triggers.
			c.Crash(cut+time.Duration(offsetMs)*time.Millisecond, ids[1])
			c.Run(1500 * time.Millisecond)

			// The three remaining majority members converge.
			ops := c.OperationalConfigIDs()
			found := false
			for _, members := range ops {
				if members.Contains(ids[0]) && members.Contains(ids[2]) && members.Contains(ids[3]) {
					found = true
				}
			}
			if !found {
				t.Fatalf("survivors did not converge: %v", ops)
			}
			requireClean(t, c, spec.Options{Settled: true})
		})
	}
}

// TestRepresentativeCrashAtInstall crashes the would-be representative
// (lowest identifier) at offsets around the install point, forcing the
// membership algorithm to re-run without it.
func TestRepresentativeCrashAtInstall(t *testing.T) {
	for _, offsetMs := range []int{40, 44, 48, 52, 60} {
		offsetMs := offsetMs
		t.Run(fmt.Sprintf("offset=%dms", offsetMs), func(t *testing.T) {
			c := New(Options{Procs: 4, Seed: int64(2000 + offsetMs)})
			ids := c.IDs()
			cut := 300 * time.Millisecond
			c.Partition(cut, ids[:3], ids[3:])
			// ids[0] is the representative of the surviving majority.
			c.Crash(cut+time.Duration(offsetMs)*time.Millisecond, ids[0])
			c.Send(600*time.Millisecond, ids[1], "after", model.Safe)
			c.Run(1500 * time.Millisecond)

			ops := c.OperationalConfigIDs()
			converged := false
			for cfg, members := range ops {
				if members.Contains(ids[1]) && members.Contains(ids[2]) {
					converged = true
					if cfg.Rep == ids[0] && members.Contains(ids[0]) {
						t.Fatalf("crashed representative still in configuration %v", cfg)
					}
				}
			}
			if !converged {
				t.Fatalf("survivors did not converge: %v", ops)
			}
			// The post-crash message must deliver at both survivors.
			for _, id := range []model.ProcessID{ids[1], ids[2]} {
				found := false
				for _, d := range c.Deliveries(id) {
					if string(d.Payload) == "after" {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s missed post-crash traffic", id)
				}
			}
			requireClean(t, c, spec.Options{Settled: true})
		})
	}
}

// TestFlappingPartitions rapidly splits and heals the network faster than
// recoveries can complete, then lets it settle: the stack must converge
// and the history must be conformant.
func TestFlappingPartitions(t *testing.T) {
	for _, periodMs := range []int{20, 35, 60} {
		periodMs := periodMs
		t.Run(fmt.Sprintf("period=%dms", periodMs), func(t *testing.T) {
			c := New(Options{Procs: 4, Seed: int64(3000 + periodMs)})
			ids := c.IDs()
			for i := 0; i < 10; i++ {
				c.Send(time.Duration(150+i*30)*time.Millisecond, ids[i%4], fmt.Sprintf("m%d", i), model.Safe)
			}
			at := 250 * time.Millisecond
			for i := 0; i < 12; i++ {
				if i%2 == 0 {
					c.Partition(at, ids[:2], ids[2:])
				} else {
					c.Merge(at)
				}
				at += time.Duration(periodMs) * time.Millisecond
			}
			c.Merge(at)
			c.Run(at + 1200*time.Millisecond)

			ops := c.OperationalConfigIDs()
			if len(ops) != 1 {
				t.Fatalf("flapping did not settle into one configuration: %v", ops)
			}
			for _, members := range ops {
				if members.Size() != 4 {
					t.Fatalf("settled configuration incomplete: %v", members)
				}
			}
			requireClean(t, c, spec.Options{Settled: true})
		})
	}
}

// TestPartitionDuringRecovery splits the surviving component again while
// its recovery from the first split is still in flight.
func TestPartitionDuringRecovery(t *testing.T) {
	for _, offsetMs := range []int{42, 46, 50, 58} {
		offsetMs := offsetMs
		t.Run(fmt.Sprintf("offset=%dms", offsetMs), func(t *testing.T) {
			c := New(Options{Procs: 5, Seed: int64(4000 + offsetMs)})
			ids := c.IDs()
			for i := 0; i < 6; i++ {
				c.Send(time.Duration(150+i*12)*time.Millisecond, ids[i%5], fmt.Sprintf("m%d", i), model.Safe)
			}
			cut := 300 * time.Millisecond
			c.Partition(cut, ids[:4], ids[4:])
			// Second cut inside the first recovery.
			c.Partition(cut+time.Duration(offsetMs)*time.Millisecond, ids[:2], ids[2:4], ids[4:])
			c.Merge(700 * time.Millisecond)
			c.Run(2 * time.Second)

			ops := c.OperationalConfigIDs()
			if len(ops) != 1 {
				t.Fatalf("did not reconverge: %v", ops)
			}
			requireClean(t, c, spec.Options{Settled: true})
		})
	}
}

// TestCrashWhileRecoveringProcessHoldsObligations crashes a process right
// after the recovery acknowledgment phase across a sweep of offsets; if
// any schedule lands between a process's acknowledgment (Step 5.c) and its
// installation (Step 6.e), the obligation machinery is what keeps
// Specification 7.1 intact for the messages others delivered relying on
// its acknowledgment.
func TestCrashWhileRecoveringProcessHoldsObligations(t *testing.T) {
	for offset := 40; offset <= 50; offset += 2 {
		offset := offset
		t.Run(fmt.Sprintf("offset=%dms", offset), func(t *testing.T) {
			c := New(Options{Procs: 4, Seed: int64(5000 + offset)})
			ids := c.IDs()
			// Safe burst right before the cut: unacknowledged safe
			// messages are exactly what recovery must place.
			at := 295 * time.Millisecond
			for i := 0; i < 12; i++ {
				c.Send(at, ids[i%4], fmt.Sprintf("m%d", i), model.Safe)
			}
			cut := 300 * time.Millisecond
			c.Partition(cut, ids[:3], ids[3:])
			c.Crash(cut+time.Duration(offset)*time.Millisecond, ids[2])
			c.Run(1800 * time.Millisecond)
			requireClean(t, c, spec.Options{Settled: true})
		})
	}
}

package harness

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/spec"
)

// TestFigure6PartitionAndMerge reproduces the paper's Figure 6: a regular
// configuration {p,q,r} partitions; p becomes isolated while q and r merge
// with {s,t}. q and r must deliver two configuration changes — one
// initiating the transitional configuration {q,r} and one installing the
// new regular configuration {q,r,s,t}.
func TestFigure6PartitionAndMerge(t *testing.T) {
	ids := []model.ProcessID{"p", "q", "r", "s", "t"}
	c := New(Options{IDs: ids, Seed: 6})
	// Two initial components: {p,q,r} and {s,t}.
	c.Partition(0, []model.ProcessID{"p", "q", "r"}, []model.ProcessID{"s", "t"})
	// Traffic inside {p,q,r}.
	for i := 0; i < 6; i++ {
		c.Send(time.Duration(150+i*8)*time.Millisecond, ids[i%3], fmt.Sprintf("m%d", i), model.Safe)
	}
	// The Figure 6 reconfiguration: p isolated; q,r join s,t.
	c.Partition(300*time.Millisecond, []model.ProcessID{"p"}, []model.ProcessID{"q", "r", "s", "t"})
	c.Run(900 * time.Millisecond)

	// q's configuration sequence must contain, in order: the old
	// regular configuration {p,q,r}, the transitional {q,r}, and the
	// new regular {q,r,s,t}.
	for _, id := range []model.ProcessID{"q", "r"} {
		seq := c.Configs(id)
		var descr []string
		for _, cf := range seq {
			descr = append(descr, cf.String())
		}
		if len(seq) < 3 {
			t.Fatalf("%s installed %v, want old regular, transitional, new regular", id, descr)
		}
		last := seq[len(seq)-1]
		trans := seq[len(seq)-2]
		old := seq[len(seq)-3]
		if !old.Members.Equal(model.NewProcessSet("p", "q", "r")) || !old.ID.IsRegular() {
			t.Fatalf("%s old configuration %v, want regular {p,q,r} (sequence %v)", id, old, descr)
		}
		if !trans.ID.IsTransitional() || !trans.Members.Equal(model.NewProcessSet("q", "r")) {
			t.Fatalf("%s transitional configuration %v, want transitional {q,r}", id, trans)
		}
		if trans.ID.Prev() != old.ID {
			t.Fatalf("%s transitional %v does not follow old regular %v", id, trans, old)
		}
		if !last.ID.IsRegular() || !last.Members.Equal(model.NewProcessSet("q", "r", "s", "t")) {
			t.Fatalf("%s final configuration %v, want regular {q,r,s,t}", id, last)
		}
	}

	// p ends alone: transitional {p} then regular {p}.
	pseq := c.Configs("p")
	if len(pseq) < 3 {
		t.Fatalf("p installed %v", pseq)
	}
	pl := pseq[len(pseq)-1]
	pt := pseq[len(pseq)-2]
	if !pl.Members.Equal(model.NewProcessSet("p")) || !pl.ID.IsRegular() {
		t.Fatalf("p's final configuration %v, want regular {p}", pl)
	}
	if !pt.ID.IsTransitional() || !pt.Members.Equal(model.NewProcessSet("p")) {
		t.Fatalf("p's transitional configuration %v, want transitional {p}", pt)
	}

	// s and t join q,r's new configuration but never see a transitional
	// configuration rooted in {p,q,r}.
	for _, id := range []model.ProcessID{"s", "t"} {
		for _, cf := range c.Configs(id) {
			if cf.ID.IsTransitional() && cf.Members.Contains("q") {
				t.Fatalf("%s installed transitional %v of a configuration it was never in", id, cf)
			}
		}
	}
	requireClean(t, c, spec.Options{Settled: true})
}

// TestSelfDeliveryAcrossPartition: a process isolated right after sending
// still delivers its own messages, in a transitional configuration
// containing only itself if need be (Specification 3, Figure 3).
func TestSelfDeliveryAcrossPartition(t *testing.T) {
	c := New(Options{Procs: 3, Seed: 7})
	ids := c.IDs()
	// Send just before partitioning; the message may not be sequenced
	// or acknowledged before the network splits.
	c.Send(199*time.Millisecond, ids[0], "mine", model.Safe)
	c.Partition(200*time.Millisecond, []model.ProcessID{ids[0]}, ids[1:])
	c.Run(time.Second)

	found := false
	for _, d := range c.Deliveries(ids[0]) {
		if string(d.Payload) == "mine" {
			found = true
		}
	}
	if !found {
		t.Fatalf("%s never delivered its own message; deliveries %v", ids[0], payloads(c.Deliveries(ids[0])))
	}
	requireClean(t, c, spec.Options{Settled: true})
}

// TestPartitionedComponentsBothMakeProgress: unlike virtual synchrony's
// primary-component model, every component continues to order and deliver
// new messages.
func TestPartitionedComponentsBothMakeProgress(t *testing.T) {
	c := New(Options{Procs: 4, Seed: 8})
	ids := c.IDs()
	c.Partition(200*time.Millisecond, ids[:2], ids[2:])
	// Traffic in both components after the split.
	c.Send(500*time.Millisecond, ids[0], "left", model.Safe)
	c.Send(500*time.Millisecond, ids[2], "right", model.Safe)
	c.Run(time.Second)

	if got := payloads(c.Deliveries(ids[1])); fmt.Sprint(got) != "[left]" {
		t.Fatalf("left component delivered %v, want [left]", got)
	}
	if got := payloads(c.Deliveries(ids[3])); fmt.Sprint(got) != "[right]" {
		t.Fatalf("right component delivered %v, want [right]", got)
	}
	requireClean(t, c, spec.Options{Settled: true})
}

// TestMergeAfterPartition: components remerge into one configuration and
// continue with a consistent total order.
func TestMergeAfterPartition(t *testing.T) {
	c := New(Options{Procs: 4, Seed: 9})
	ids := c.IDs()
	c.Partition(200*time.Millisecond, ids[:2], ids[2:])
	c.Send(400*time.Millisecond, ids[0], "during-left", model.Agreed)
	c.Send(400*time.Millisecond, ids[3], "during-right", model.Agreed)
	c.Merge(600 * time.Millisecond)
	c.Send(900*time.Millisecond, ids[1], "after", model.Safe)
	c.Run(1500 * time.Millisecond)

	ops := c.OperationalConfigIDs()
	if len(ops) != 1 {
		t.Fatalf("after merge: operational configurations %v, want one", ops)
	}
	for _, id := range ids {
		last := payloads(c.Deliveries(id))
		if len(last) == 0 || last[len(last)-1] != "after" {
			t.Fatalf("%s deliveries %v, want trailing post-merge message", id, last)
		}
	}
	// The pre-merge messages stay component-local: the merged
	// configuration does not transfer old-component messages.
	for _, d := range c.Deliveries(ids[0]) {
		if string(d.Payload) == "during-right" {
			t.Fatal("message from the other component leaked across the merge")
		}
	}
	requireClean(t, c, spec.Options{Settled: true})
}

// TestCrashAndRecoverSameIdentifier: a crashed process recovers with
// stable storage intact and rejoins under the same identifier.
func TestCrashAndRecoverSameIdentifier(t *testing.T) {
	c := New(Options{Procs: 3, Seed: 10})
	ids := c.IDs()
	c.Send(150*time.Millisecond, ids[0], "before", model.Safe)
	c.Crash(250*time.Millisecond, ids[2])
	c.Send(400*time.Millisecond, ids[0], "while-down", model.Safe)
	c.Recover(500*time.Millisecond, ids[2])
	c.Send(900*time.Millisecond, ids[2], "after-recovery", model.Safe)
	c.Run(1500 * time.Millisecond)

	ops := c.OperationalConfigIDs()
	if len(ops) != 1 {
		t.Fatalf("operational configurations %v, want one (all merged)", ops)
	}
	for cfg, members := range ops {
		if members.Size() != 3 {
			t.Fatalf("configuration %v has %v, want all three", cfg, members)
		}
	}
	// The recovered process must deliver its own post-recovery message
	// and must NOT have re-delivered "before" twice.
	count := 0
	for _, d := range c.Deliveries(ids[2]) {
		if string(d.Payload) == "before" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("recovered process delivered 'before' %d times, want exactly once", count)
	}
	requireClean(t, c, spec.Options{Settled: true})
}

// TestCascadedPartitions: repeated reconfiguration under churn stays
// consistent.
func TestCascadedPartitions(t *testing.T) {
	c := New(Options{Procs: 5, Seed: 11})
	ids := c.IDs()
	for i := 0; i < 30; i++ {
		c.Send(time.Duration(100+i*20)*time.Millisecond, ids[i%5], fmt.Sprintf("m%d", i), model.Safe)
	}
	c.Partition(250*time.Millisecond, ids[:2], ids[2:])
	c.Partition(450*time.Millisecond, ids[:2], ids[2:4], ids[4:])
	c.Merge(650 * time.Millisecond)
	c.Partition(850*time.Millisecond, ids[:4], ids[4:])
	c.Merge(1050 * time.Millisecond)
	c.Run(2 * time.Second)

	ops := c.OperationalConfigIDs()
	if len(ops) != 1 {
		t.Fatalf("final operational configurations %v, want one", ops)
	}
	requireClean(t, c, spec.Options{Settled: true})
}

// TestRandomAdversarialSchedules is the workhorse conformance test: random
// partitions, merges, crashes, recoveries and client traffic, then a settle
// period, then the full specification check.
func TestRandomAdversarialSchedules(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runAdversarial(t, seed, 4, 1500*time.Millisecond)
		})
	}
}

func runAdversarial(t *testing.T, seed int64, procs int, horizon time.Duration) {
	runAdversarialLossy(t, seed, procs, horizon, 0, 0)
}

// runAdversarialLossy is the adversarial schedule over a lossy medium.
func runAdversarialLossy(t *testing.T, seed int64, procs int, horizon time.Duration, drop, dup float64) {
	rng := rand.New(rand.NewSource(seed))
	netCfg := netsimDefaultWithLoss(drop, dup)
	c := New(Options{Procs: procs, Seed: seed, Net: &netCfg})
	ids := c.IDs()
	down := make(map[model.ProcessID]bool)

	at := 150 * time.Millisecond
	for at < horizon {
		switch rng.Intn(10) {
		case 0: // partition into two random groups
			k := 1 + rng.Intn(procs-1)
			perm := rng.Perm(procs)
			var a, b []model.ProcessID
			for i, pi := range perm {
				if i < k {
					a = append(a, ids[pi])
				} else {
					b = append(b, ids[pi])
				}
			}
			c.Partition(at, a, b)
		case 1:
			c.Merge(at)
		case 2: // crash one live process (keep majority-ish alive)
			live := 0
			for _, id := range ids {
				if !down[id] {
					live++
				}
			}
			if live > 2 {
				id := ids[rng.Intn(procs)]
				if !down[id] {
					down[id] = true
					c.Crash(at, id)
				}
			}
		case 3: // recover one down process
			for _, id := range ids {
				if down[id] {
					down[id] = false
					c.Recover(at, id)
					break
				}
			}
		default: // client traffic
			id := ids[rng.Intn(procs)]
			svc := model.Safe
			if rng.Intn(2) == 0 {
				svc = model.Agreed
			}
			c.Send(at, id, fmt.Sprintf("m-%d-%d", seed, at/time.Millisecond), svc)
		}
		at += time.Duration(20+rng.Intn(60)) * time.Millisecond
	}
	// Settle: recover everyone, merge, and give the system quiet time.
	c.At(horizon, func() {
		for _, id := range ids {
			if down[id] {
				c.Net.SetDown(id, false)
				c.Node(id).Recover()
			}
		}
		c.Net.Merge()
	})
	c.Run(horizon + time.Second)

	ops := c.OperationalConfigIDs()
	if len(ops) != 1 {
		t.Fatalf("after settling: operational configurations %v, want one", ops)
	}
	requireClean(t, c, spec.Options{Settled: true})
}

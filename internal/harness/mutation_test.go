package harness

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/spec"
)

// Mutation testing of the specification checker: take a conforming
// execution of the real protocol, apply a mutation that provably breaks
// one of the specifications, and require the checker to flag it. This
// guards against the checker silently checking nothing.

// conformingHistory produces a settled, checker-clean execution with
// enough structure (partition + merge, safe traffic) to mutate.
func conformingHistory(t *testing.T, seed int64) []model.Event {
	t.Helper()
	c := New(Options{Procs: 4, Seed: seed})
	ids := c.IDs()
	for i := 0; i < 10; i++ {
		c.Send(time.Duration(150+i*15)*time.Millisecond, ids[i%4], fmt.Sprintf("m%d", i), model.Safe)
	}
	c.Partition(280*time.Millisecond, ids[:2], ids[2:])
	c.Merge(500 * time.Millisecond)
	c.Run(1200 * time.Millisecond)
	events := c.History.Events()
	if vs := spec.NewChecker(events, spec.Options{Settled: true}).CheckAll(); len(vs) != 0 {
		t.Fatalf("base execution not conforming: %v", vs)
	}
	out := make([]model.Event, len(events))
	copy(out, events)
	return out
}

// flagged reports whether the checker finds any violation.
func flagged(events []model.Event) bool {
	return len(spec.NewChecker(events, spec.Options{Settled: true}).CheckAll()) > 0
}

// deliverIndices returns indices of deliver events, optionally restricted
// to messages delivered by at least minProcs processes.
func deliverIndices(events []model.Event, minProcs int) []int {
	count := make(map[model.MessageID]int)
	for _, e := range events {
		if e.Type == model.EventDeliver {
			count[e.Msg]++
		}
	}
	var out []int
	for i, e := range events {
		if e.Type == model.EventDeliver && count[e.Msg] >= minProcs {
			out = append(out, i)
		}
	}
	return out
}

func TestMutationDuplicateDeliveryFlagged(t *testing.T) {
	events := conformingHistory(t, 31)
	rng := rand.New(rand.NewSource(1))
	dels := deliverIndices(events, 1)
	for trial := 0; trial < 10; trial++ {
		i := dels[rng.Intn(len(dels))]
		mutated := append(append([]model.Event{}, events...), events[i])
		if !flagged(mutated) {
			t.Fatalf("duplicated delivery of %v not flagged", events[i])
		}
	}
}

func TestMutationDroppedSafeDeliveryFlagged(t *testing.T) {
	events := conformingHistory(t, 32)
	dropped := 0
	for i, e := range events {
		if e.Type != model.EventDeliver || e.Service != model.Safe {
			continue
		}
		// Only messages delivered by several processes make the drop
		// provably illegal (7.1 at the others, 4 for joint movers).
		n := 0
		for _, e2 := range events {
			if e2.Type == model.EventDeliver && e2.Msg == e.Msg {
				n++
			}
		}
		if n < 3 {
			continue
		}
		mutated := append(append([]model.Event{}, events[:i]...), events[i+1:]...)
		if !flagged(mutated) {
			t.Fatalf("dropped safe delivery %v not flagged", e)
		}
		if dropped++; dropped >= 8 {
			break
		}
	}
	if dropped == 0 {
		t.Fatal("no safe deliveries with enough replication to mutate")
	}
}

func TestMutationSwappedDeliveriesFlagged(t *testing.T) {
	events := conformingHistory(t, 33)
	// Swap two deliveries that are consecutive in one process's event
	// sequence: conflicting total orders → the condensation becomes
	// cyclic (or the displaced delivery precedes its send, 1.3).
	byProc := make(map[model.ProcessID][]int)
	for i, e := range events {
		if e.Type == model.EventDeliver {
			byProc[e.Proc] = append(byProc[e.Proc], i)
		}
	}
	var pairs [][2]int
	for _, idxs := range byProc {
		for k := 0; k+1 < len(idxs); k++ {
			pairs = append(pairs, [2]int{idxs[k], idxs[k+1]})
		}
	}
	swapped := 0
	for _, pr := range pairs {
		i, j := pr[0], pr[1]
		a, b := events[i], events[j]
		if a.Msg == b.Msg || a.Config != b.Config {
			continue
		}
		// Some other process must deliver BOTH messages, so the swap
		// creates genuinely conflicting orders; without a common
		// second deliverer the reordering can be legal.
		hasA := make(map[model.ProcessID]bool)
		hasB := make(map[model.ProcessID]bool)
		for _, e := range events {
			if e.Type == model.EventDeliver && e.Msg == a.Msg {
				hasA[e.Proc] = true
			}
			if e.Type == model.EventDeliver && e.Msg == b.Msg {
				hasB[e.Proc] = true
			}
		}
		common := false
		for w := range hasA {
			if w != a.Proc && hasB[w] {
				common = true
			}
		}
		if !common {
			continue
		}
		mutated := append([]model.Event{}, events...)
		mutated[i], mutated[j] = mutated[j], mutated[i]
		if !flagged(mutated) {
			t.Fatalf("swapped deliveries %v / %v not flagged", a, b)
		}
		if swapped++; swapped >= 8 {
			break
		}
	}
	if swapped == 0 {
		t.Fatal("no adjacent delivery pairs to swap")
	}
}

func TestMutationRetaggedConfigFlagged(t *testing.T) {
	events := conformingHistory(t, 34)
	rng := rand.New(rand.NewSource(2))
	dels := deliverIndices(events, 1)
	bogus := model.RegularID(999, "zz")
	for trial := 0; trial < 10; trial++ {
		i := dels[rng.Intn(len(dels))]
		mutated := append([]model.Event{}, events...)
		mutated[i].Config = bogus
		if !flagged(mutated) {
			t.Fatalf("retagged delivery %v not flagged", events[i])
		}
	}
}

func TestMutationForgedSendFlagged(t *testing.T) {
	events := conformingHistory(t, 35)
	// A second send of an existing message violates 1.4.
	for _, e := range events {
		if e.Type == model.EventSend {
			mutated := append(append([]model.Event{}, events...), e)
			if !flagged(mutated) {
				t.Fatalf("forged duplicate send %v not flagged", e)
			}
			return
		}
	}
	t.Fatal("no send events in base history")
}

func TestMutationDroppedConfChangeFlagged(t *testing.T) {
	events := conformingHistory(t, 36)
	// Removing a process's configuration change strands its subsequent
	// events outside any installed configuration (2.2).
	for i, e := range events {
		if e.Type != model.EventDeliverConf {
			continue
		}
		// Only if the process has later events in that configuration.
		hasLater := false
		for _, e2 := range events[i+1:] {
			if e2.Proc == e.Proc && e2.Type == model.EventDeliver && e2.Config == e.Config {
				hasLater = true
				break
			}
		}
		if !hasLater {
			continue
		}
		mutated := append(append([]model.Event{}, events[:i]...), events[i+1:]...)
		if !flagged(mutated) {
			t.Fatalf("dropped configuration change %v not flagged", e)
		}
		return
	}
	t.Fatal("no droppable configuration change found")
}

package harness

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/spec"
)

// TestStatsCountsRejectedSubmissions: traffic aimed at a crashed process
// is rejected and the rejection is observable, not silently discarded.
func TestStatsCountsRejectedSubmissions(t *testing.T) {
	c := New(Options{Procs: 3, Seed: 41})
	ids := c.IDs()
	c.Send(150*time.Millisecond, ids[0], "ok", model.Safe)
	c.Crash(200*time.Millisecond, ids[1])
	c.Send(250*time.Millisecond, ids[1], "lost", model.Safe)
	c.Send(260*time.Millisecond, ids[1], "lost2", model.Safe)
	c.Run(time.Second)

	st := c.Stats()
	if st.Submitted != 1 {
		t.Fatalf("Submitted = %d, want 1", st.Submitted)
	}
	if st.Rejected != 2 {
		t.Fatalf("Rejected = %d, want 2", st.Rejected)
	}
}

// TestOneWayCutForcesReconfiguration: an asymmetric link failure (p hears
// q, q never hears p) must be detected and resolved by the membership
// algorithm — precisely the failure mode symmetric partitions never
// exercise — and the resulting history must be conformant.
func TestOneWayCutForcesReconfiguration(t *testing.T) {
	c := New(Options{Procs: 3, Seed: 42})
	ids := c.IDs()
	for i := 0; i < 4; i++ {
		c.Send(time.Duration(150+i*10)*time.Millisecond, ids[i%3], fmt.Sprintf("m%d", i), model.Safe)
	}
	c.OneWay(300*time.Millisecond, ids[:1], ids[1:])
	c.Send(600*time.Millisecond, ids[1], "during", model.Safe)
	c.HealLinks(900 * time.Millisecond)
	c.Run(2500 * time.Millisecond)

	// After healing everyone converges back into one full configuration.
	ops := c.OperationalConfigIDs()
	if len(ops) != 1 {
		t.Fatalf("did not settle into one configuration: %v", ops)
	}
	for _, members := range ops {
		if members.Size() != 3 {
			t.Fatalf("settled configuration incomplete: %v", members)
		}
	}
	requireClean(t, c, spec.Options{Settled: true})
}

// TestDropTokensStallsThenHeals: losing every token forces failure
// suspicion and reconfiguration churn; once the class loss clears, the
// stack must settle into the full membership with a conformant history.
func TestDropTokensStallsThenHeals(t *testing.T) {
	c := New(Options{Procs: 3, Seed: 43})
	ids := c.IDs()
	c.Send(150*time.Millisecond, ids[0], "before", model.Safe)
	c.DropKinds(300*time.Millisecond, "", "", "token")
	c.Send(500*time.Millisecond, ids[1], "during", model.Safe)
	c.ClearKindDrops(700 * time.Millisecond)
	c.Run(2500 * time.Millisecond)

	if c.Net.Stats().Filtered == 0 {
		t.Fatal("no tokens were filtered; the class rule did nothing")
	}
	ops := c.OperationalConfigIDs()
	if len(ops) != 1 {
		t.Fatalf("did not settle into one configuration: %v", ops)
	}
	requireClean(t, c, spec.Options{Settled: true})
}

// TestCrashCorruptTornWriteRecovery: a process crashes with a torn last
// log record and later recovers; the recovery exchange must patch the
// missing state and the history must satisfy every specification.
func TestCrashCorruptTornWriteRecovery(t *testing.T) {
	c := New(Options{Procs: 3, Seed: 44})
	ids := c.IDs()
	for i := 0; i < 6; i++ {
		c.Send(time.Duration(150+i*10)*time.Millisecond, ids[i%3], fmt.Sprintf("m%d", i), model.Safe)
	}
	c.CrashCorrupt(260*time.Millisecond, ids[2], CorruptTornWrite, 0)
	c.Recover(600*time.Millisecond, ids[2])
	c.Send(900*time.Millisecond, ids[2], "after", model.Safe)
	c.Run(2500 * time.Millisecond)

	ops := c.OperationalConfigIDs()
	if len(ops) != 1 {
		t.Fatalf("did not settle into one configuration: %v", ops)
	}
	for _, members := range ops {
		if members.Size() != 3 {
			t.Fatalf("recovered process missing from settled configuration: %v", members)
		}
	}
	requireClean(t, c, spec.Options{Settled: true})
}

// TestCrashCorruptLostSuffixRecovery: same, with a lost log suffix.
func TestCrashCorruptLostSuffixRecovery(t *testing.T) {
	c := New(Options{Procs: 4, Seed: 45})
	ids := c.IDs()
	for i := 0; i < 8; i++ {
		c.Send(time.Duration(150+i*8)*time.Millisecond, ids[i%4], fmt.Sprintf("m%d", i), model.Safe)
	}
	c.CrashCorrupt(250*time.Millisecond, ids[1], CorruptLostSuffix, 4)
	c.Recover(700*time.Millisecond, ids[1])
	c.Run(2500 * time.Millisecond)

	ops := c.OperationalConfigIDs()
	if len(ops) != 1 {
		t.Fatalf("did not settle into one configuration: %v", ops)
	}
	requireClean(t, c, spec.Options{Settled: true})
}

// TestCorruptionModeNames pins the mode rendering used by reproducers.
func TestCorruptionModeNames(t *testing.T) {
	for mode, want := range map[Corruption]string{
		CorruptNone:       "none",
		CorruptTornWrite:  "torn_write",
		CorruptLostSuffix: "lost_suffix",
		Corruption(99):    "corruption(?)",
	} {
		if got := mode.String(); got != want {
			t.Fatalf("Corruption(%d).String() = %q, want %q", mode, got, want)
		}
	}
}

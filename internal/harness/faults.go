// Fault injection surface of the cluster harness.
//
// Scenario scripts and the chaos engine (internal/chaos) drive faults
// through these helpers instead of poking the network directly, so every
// fault is scheduled at a virtual time like any other action and the whole
// execution stays deterministic and replayable from the seed.
package harness

import (
	"time"

	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/wire"
)

// Stats counts client-facing harness activity.
type Stats struct {
	// Submitted counts client submissions accepted by a node.
	Submitted uint64
	// Rejected counts client submissions refused (process down).
	Rejected uint64
	// Backlogged counts client submissions shed because the process's
	// send backlog was full (node.ErrBacklog).
	Backlogged uint64
	// Corruptions counts stable-storage faults injected at crash time.
	Corruptions uint64
	// Per-mode materialization counters for the self-stabilization
	// fault model: a scheduled fault only counts when it actually
	// changed state (the soak asserts every mode materializes).
	SeqWraps          uint64
	RingRegressions   uint64
	ObligationPoisons uint64
	LogFlips          uint64
	// Perturbations counts live in-memory faults applied to running
	// nodes between token visits (as opposed to crash-time faults).
	Perturbations uint64
}

// Stats returns a copy of the activity counters.
func (c *Cluster) Stats() Stats { return c.stats }

// Corruption selects a stable-storage fault injected when a process
// crashes (see internal/stable for the fault model and its bounds).
type Corruption int

const (
	// CorruptNone leaves stable storage intact (the paper's model).
	CorruptNone Corruption = iota
	// CorruptTornWrite destroys the log record whose write raced the
	// crash, if any.
	CorruptTornWrite
	// CorruptLostSuffix destroys unflushed tail records above the
	// known-safe watermark.
	CorruptLostSuffix
	// CorruptSeqWrap wraps the sender sequence counter back to half
	// its value (transient counter corruption; healed from SeenSeqs
	// observation evidence).
	CorruptSeqWrap
	// CorruptRingSeqRegress regresses the configuration freshness
	// counter (healed from installed-configuration evidence and peers'
	// joins).
	CorruptRingSeqRegress
	// CorruptObligations plants ghost processes in the obligation set
	// (rejected at recovery start).
	CorruptObligations
	// CorruptLogFlip flips bits in the newest stored log entries
	// (detected by checksums at load; gaps re-requested from peers).
	CorruptLogFlip
)

// String names the corruption mode.
func (m Corruption) String() string {
	switch m {
	case CorruptNone:
		return "none"
	case CorruptTornWrite:
		return "torn_write"
	case CorruptLostSuffix:
		return "lost_suffix"
	case CorruptSeqWrap:
		return "seq_wrap"
	case CorruptRingSeqRegress:
		return "ring_seq_regress"
	case CorruptObligations:
		return "poison_obligations"
	case CorruptLogFlip:
		return "log_bit_flip"
	default:
		return "corruption(?)"
	}
}

// CrashCorrupt schedules a process failure at time t that additionally
// damages the process's stable storage: mode selects the fault and n
// bounds how many records a lost suffix may destroy.
func (c *Cluster) CrashCorrupt(t time.Duration, id model.ProcessID, mode Corruption, n int) {
	c.At(t, func() {
		c.nodes[id].Crash()
		c.Net.SetDown(id, true)
		switch mode {
		case CorruptTornWrite:
			if c.stores[id].TearLastWrite() {
				c.stats.Corruptions++
			}
		case CorruptLostSuffix:
			if c.stores[id].LoseLogSuffix(n) > 0 {
				c.stats.Corruptions++
			}
		case CorruptSeqWrap:
			if c.stores[id].WrapSenderSeq() {
				c.stats.Corruptions++
				c.stats.SeqWraps++
			}
		case CorruptRingSeqRegress:
			if c.stores[id].RegressRingSeq() {
				c.stats.Corruptions++
				c.stats.RingRegressions++
			}
		case CorruptObligations:
			if c.stores[id].PoisonObligations(n) > 0 {
				c.stats.Corruptions++
				c.stats.ObligationPoisons++
			}
		case CorruptLogFlip:
			if c.stores[id].FlipLogBits(n) > 0 {
				c.stats.Corruptions++
				c.stats.LogFlips++
			}
		}
	})
}

// Perturb schedules an in-memory corruption of a live node at time t:
// the transient faults of the self-stabilization model, applied between
// token visits rather than at crash time. mode selects the fault
// (CorruptSeqWrap, CorruptRingSeqRegress or CorruptObligations; the
// storage-only modes are no-ops here) and n sizes an obligation poison.
// A perturbation of a down process is a no-op; only faults that
// actually changed state are counted.
func (c *Cluster) Perturb(t time.Duration, id model.ProcessID, mode Corruption, n int) {
	c.At(t, func() {
		node := c.nodes[id]
		hit := false
		switch mode {
		case CorruptSeqWrap:
			if node.PerturbSenderSeq() {
				c.stats.SeqWraps++
				hit = true
			}
		case CorruptRingSeqRegress:
			if node.PerturbRingSeq() {
				c.stats.RingRegressions++
				hit = true
			}
		case CorruptObligations:
			if node.PerturbObligations(n) {
				c.stats.ObligationPoisons++
				hit = true
			}
		}
		if hit {
			c.stats.Perturbations++
		}
	})
}

// OneWay schedules an asymmetric cut at time t: packets from any process
// in from to any process in to are lost, while the reverse direction keeps
// flowing. Repeated calls accumulate.
func (c *Cluster) OneWay(t time.Duration, from, to []model.ProcessID) {
	c.At(t, func() {
		for _, f := range from {
			for _, r := range to {
				if f == r {
					continue
				}
				c.Net.SetLinkRule(f, r, netsim.LinkRule{Block: true})
			}
		}
	})
}

// DelaySpike schedules a latency burst at time t: every link gains extra
// fixed delay plus uniformly distributed jitter, which reorders packets
// aggressively once jitter exceeds the packet spacing.
func (c *Cluster) DelaySpike(t time.Duration, extra, jitter time.Duration) {
	c.At(t, func() {
		c.Net.SetLinkRule(netsim.Wildcard, netsim.Wildcard,
			netsim.LinkRule{Delay: extra, Jitter: jitter})
	})
}

// LinkLoss schedules directional packet loss on every link at time t.
func (c *Cluster) LinkLoss(t time.Duration, rate float64) {
	c.At(t, func() {
		c.Net.SetLinkRule(netsim.Wildcard, netsim.Wildcard,
			netsim.LinkRule{Drop: rate})
	})
}

// HealLinks schedules removal of every directional link rule (one-way
// cuts, delay spikes, link loss) at time t. Symmetric partitions installed
// with Partition are unaffected; heal those with Merge.
func (c *Cluster) HealLinks(t time.Duration) {
	c.At(t, func() { c.Net.ClearLinkRules() })
}

// dropKey scopes a message-class loss rule to a directed pair; the zero
// ProcessID is a wildcard.
type dropKey struct {
	from, to model.ProcessID
}

// DropKinds schedules targeted loss at time t: wire messages whose
// Kind() is listed stop flowing from from to to (either may be
// netsim.Wildcard to match every process). Repeated calls accumulate.
func (c *Cluster) DropKinds(t time.Duration, from, to model.ProcessID, kinds ...string) {
	c.At(t, func() {
		if c.dropKinds == nil {
			c.dropKinds = make(map[dropKey]map[string]bool)
			c.Net.SetFilter(c.filterKinds)
		}
		k := dropKey{from, to}
		if c.dropKinds[k] == nil {
			c.dropKinds[k] = make(map[string]bool)
		}
		for _, kind := range kinds {
			c.dropKinds[k][kind] = true
		}
	})
}

// ClearKindDrops schedules removal of every message-class loss rule at
// time t.
func (c *Cluster) ClearKindDrops(t time.Duration) {
	c.At(t, func() {
		c.dropKinds = nil
		c.Net.SetFilter(nil)
	})
}

// filterKinds is the netsim filter consulting the active drop rules. A
// wire.DataBatch is a packet of the "data" class: dropping either class
// ("data" or "data_batch") on the link loses the packet and everything it
// carries, exactly as a "data" rule lost each individual data packet
// before batching.
func (c *Cluster) filterKinds(from, to model.ProcessID, payload any) bool {
	msg, ok := payload.(wire.Message)
	if !ok {
		return true
	}
	if _, isBatch := msg.(wire.DataBatch); isBatch {
		return !c.dropsKind(from, to, "data") && !c.dropsKind(from, to, msg.Kind())
	}
	return !c.dropsKind(from, to, msg.Kind())
}

// dropsKind reports whether an active rule drops the kind on the link.
func (c *Cluster) dropsKind(from, to model.ProcessID, kind string) bool {
	for _, k := range [4]dropKey{
		{from, to}, {from, netsim.Wildcard}, {netsim.Wildcard, to}, {netsim.Wildcard, netsim.Wildcard},
	} {
		if kinds, ok := c.dropKinds[k]; ok && kinds[kind] {
			return true
		}
	}
	return false
}

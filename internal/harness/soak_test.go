package harness

import (
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"
)

// soakSeeds returns the soak seed count from CHAOS_SOAK — the single
// environment gate for every long battery in the repo (this package and
// internal/chaos share it; see internal/chaos/chaos_test.go). Unset
// means def; def <= 0 marks the soak opt-in and skips the test. A
// malformed value fails loudly instead of silently running nothing.
func soakSeeds(t *testing.T, def int) int {
	t.Helper()
	raw := os.Getenv("CHAOS_SOAK")
	if raw == "" {
		if def <= 0 {
			t.Skip("set CHAOS_SOAK=<seeds> to run this soak")
		}
		return def
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n <= 0 {
		t.Fatalf("CHAOS_SOAK=%q: want a positive integer seed count", raw)
	}
	return n
}

// TestSoakAdversarial is the long-running conformance soak: many seeds,
// more processes, longer horizons, heavier churn. Skipped with -short;
// CHAOS_SOAK widens the seed sweep beyond the default 20.
func TestSoakAdversarial(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	n := soakSeeds(t, 20)
	for seed := int64(100); seed < 100+int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runAdversarial(t, seed, 6, 3*time.Second)
		})
	}
}

// TestSoakLossyAdversarial layers packet loss and duplication on top of the
// adversarial schedule. Skipped with -short; CHAOS_SOAK widens the seed
// sweep beyond the default 8.
func TestSoakLossyAdversarial(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	n := soakSeeds(t, 8)
	for seed := int64(200); seed < 200+int64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runAdversarialLossy(t, seed, 4, 1500*time.Millisecond, 0.03, 0.01)
		})
	}
}

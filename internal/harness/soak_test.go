package harness

import (
	"fmt"
	"testing"
	"time"
)

// TestSoakAdversarial is the long-running conformance soak: many seeds,
// more processes, longer horizons, heavier churn. Skipped with -short.
func TestSoakAdversarial(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for seed := int64(100); seed < 120; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runAdversarial(t, seed, 6, 3*time.Second)
		})
	}
}

// TestSoakLossyAdversarial layers packet loss and duplication on top of the
// adversarial schedule. Skipped with -short.
func TestSoakLossyAdversarial(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for seed := int64(200); seed < 208; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runAdversarialLossy(t, seed, 4, 1500*time.Millisecond, 0.03, 0.01)
		})
	}
}

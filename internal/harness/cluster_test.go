package harness

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/spec"
)

// payloads extracts delivered payloads.
func payloads(ds []node.Delivery) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = string(d.Payload)
	}
	return out
}

func requireClean(t *testing.T, c *Cluster, opts spec.Options) {
	t.Helper()
	if vs := c.Check(opts); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("violation: %v", v)
		}
		t.Fatalf("%d specification violations", len(vs))
	}
}

func TestClusterFormsSingleConfiguration(t *testing.T) {
	c := New(Options{Procs: 4, Seed: 1})
	c.Run(500 * time.Millisecond)
	ops := c.OperationalConfigIDs()
	if len(ops) != 1 {
		t.Fatalf("operational configurations %v, want exactly one", ops)
	}
	for cfg, members := range ops {
		if members.Size() != 4 {
			t.Fatalf("configuration %v has %d operational members, want 4", cfg, members.Size())
		}
	}
	requireClean(t, c, spec.Options{Settled: true})
}

func TestSteadyStateAgreedDelivery(t *testing.T) {
	c := New(Options{Procs: 3, Seed: 2})
	for i := 0; i < 10; i++ {
		c.Send(time.Duration(100+i*5)*time.Millisecond, c.IDs()[i%3], fmt.Sprintf("m%d", i), model.Agreed)
	}
	c.Run(time.Second)
	ref := payloads(c.Deliveries(c.IDs()[0]))
	if len(ref) != 10 {
		t.Fatalf("delivered %v, want all 10", ref)
	}
	for _, id := range c.IDs()[1:] {
		if fmt.Sprint(payloads(c.Deliveries(id))) != fmt.Sprint(ref) {
			t.Fatalf("%s delivered %v, want %v", id, payloads(c.Deliveries(id)), ref)
		}
	}
	requireClean(t, c, spec.Options{Settled: true})
}

func TestSteadyStateSafeDelivery(t *testing.T) {
	c := New(Options{Procs: 5, Seed: 3})
	for i := 0; i < 10; i++ {
		c.Send(time.Duration(100+i*7)*time.Millisecond, c.IDs()[i%5], fmt.Sprintf("s%d", i), model.Safe)
	}
	c.Run(time.Second)
	for _, id := range c.IDs() {
		if got := len(c.Deliveries(id)); got != 10 {
			t.Fatalf("%s delivered %d safe messages, want 10", id, got)
		}
	}
	requireClean(t, c, spec.Options{Settled: true})
}

func TestLossyNetworkStillDeliversConsistently(t *testing.T) {
	netCfg := netsimDefaultWithLoss(0.05, 0.02)
	c := New(Options{Procs: 3, Seed: 4, Net: &netCfg})
	for i := 0; i < 20; i++ {
		c.Send(time.Duration(150+i*4)*time.Millisecond, c.IDs()[i%3], fmt.Sprintf("m%d", i), model.Safe)
	}
	c.Run(2 * time.Second)
	ref := payloads(c.Deliveries(c.IDs()[0]))
	if len(ref) != 20 {
		t.Fatalf("delivered %d, want 20", len(ref))
	}
	for _, id := range c.IDs()[1:] {
		if fmt.Sprint(payloads(c.Deliveries(id))) != fmt.Sprint(ref) {
			t.Fatalf("%s diverged under loss", id)
		}
	}
	requireClean(t, c, spec.Options{Settled: true})
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []string {
		c := New(Options{Procs: 3, Seed: 42})
		for i := 0; i < 6; i++ {
			c.Send(time.Duration(100+i*10)*time.Millisecond, c.IDs()[i%3], fmt.Sprintf("m%d", i), model.Safe)
		}
		c.Partition(200*time.Millisecond, []model.ProcessID{c.IDs()[0]}, []model.ProcessID{c.IDs()[1], c.IDs()[2]})
		c.Merge(400 * time.Millisecond)
		c.Run(time.Second)
		var out []string
		for _, e := range c.History.Events() {
			out = append(out, e.String())
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at %d:\n%s\n%s", i, a[i], b[i])
		}
	}
}

// netsimDefaultWithLoss builds a lossy network profile.
func netsimDefaultWithLoss(drop, dup float64) netsim.Config {
	cfg := netsim.Default(0)
	cfg.DropRate = drop
	cfg.DupRate = dup
	return cfg
}

// TestBackpressureShedsIntoBackloggedStat bounds a node's send backlog and
// floods one process in a single instant: the excess is rejected with
// ErrBacklog, counted separately from down-process rejections, and the
// accepted prefix still delivers everywhere without violations.
func TestBackpressureShedsIntoBackloggedStat(t *testing.T) {
	cfg := node.DefaultConfig()
	cfg.MaxPending = 8
	c := New(Options{Procs: 3, Seed: 1, Node: &cfg})
	ids := c.IDs()
	for i := 0; i < 40; i++ {
		c.Send(500*time.Millisecond, ids[0], fmt.Sprintf("m%d", i), model.Safe)
	}
	c.Run(2 * time.Second)
	st := c.Stats()
	if st.Backlogged == 0 {
		t.Fatal("no submissions shed: backpressure bound not enforced")
	}
	if st.Rejected != 0 {
		t.Fatalf("Rejected = %d, want backlog shedding counted separately", st.Rejected)
	}
	if st.Submitted+st.Backlogged != 40 {
		t.Fatalf("submitted %d + backlogged %d, want 40 total", st.Submitted, st.Backlogged)
	}
	want := payloads(c.Deliveries(ids[0]))
	if len(want) == 0 {
		t.Fatal("accepted prefix not delivered")
	}
	for _, id := range ids[1:] {
		if fmt.Sprint(payloads(c.Deliveries(id))) != fmt.Sprint(want) {
			t.Fatalf("%s delivered %v, want %v", id, payloads(c.Deliveries(id)), want)
		}
	}
	requireClean(t, c, spec.Options{})
}

package evs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/spec"
	"repro/internal/stable"
	"repro/internal/transport"
	"repro/internal/wire"
)

// LiveGroup runs the same protocol stack as Group, but over real
// goroutines, channels and wall-clock timers instead of the deterministic
// simulator: one receiver goroutine per process, an in-process broadcast
// hub with a mutable partition map, and time.Timer-driven protocol timers.
//
// The simulator remains the right tool for reproducible experiments and
// adversarial schedules; LiveGroup exists to exercise the stack under real
// concurrency (the race detector runs over it in the tests) and to host
// interactive examples. Executions still record the formal-model trace and
// can be verified with Check.
type LiveGroup struct {
	mu    sync.Mutex
	ids   []ProcessID
	procs map[ProcessID]*liveProc
	hub   *liveHub

	trace      spec.History
	deliveries map[ProcessID][]Delivery
	confs      map[ProcessID][]ConfigEvent
	observers  []Observer

	// start anchors the group's clock: metric timestamps and delivery
	// times are wall-clock durations since the group was created, the
	// live counterpart of the simulator's virtual time.
	start   time.Time
	metrics map[ProcessID]*obs.Metrics

	metricsSrv *http.Server

	closed bool
	wg     sync.WaitGroup
}

// liveHub is the in-process broadcast medium.
type liveHub struct {
	mu        sync.Mutex
	component map[ProcessID]int
	down      map[ProcessID]bool
	inbox     map[ProcessID]chan liveEnvelope
	nextComp  int
	// met is the medium's observability scope, mirroring what netsim's
	// "net" scope records in the simulator: sends, deliveries (enqueues),
	// overflow drops and partition/down cuts.
	met *obs.Metrics
}

type liveEnvelope struct {
	from ProcessID
	msg  wire.Message
}

// liveProc is one process: the node state machine guarded by a mutex, its
// timers, and its receiver goroutine.
type liveProc struct {
	mu     sync.Mutex
	node   *node.Node
	store  *stable.Store
	timers map[node.TimerKind]*time.Timer
	g      *LiveGroup
	id     ProcessID
	dead   bool // stops timer callbacks racing shutdown
}

var (
	_ node.Env            = (*liveProc)(nil)
	_ transport.Transport = (*liveProc)(nil)
)

// NewLiveGroup starts n processes named p01..pNN. Call Close when done.
func NewLiveGroup(n int, cfg *node.Config) *LiveGroup {
	if n <= 0 {
		n = 3
	}
	nodeCfg := node.DefaultConfig()
	if cfg != nil {
		nodeCfg = *cfg
	}
	g := &LiveGroup{
		procs:      make(map[ProcessID]*liveProc, n),
		deliveries: make(map[ProcessID][]Delivery),
		confs:      make(map[ProcessID][]ConfigEvent),
		start:      time.Now(),
		metrics:    make(map[ProcessID]*obs.Metrics, n),
		hub: &liveHub{
			component: make(map[ProcessID]int),
			down:      make(map[ProcessID]bool),
			inbox:     make(map[ProcessID]chan liveEnvelope),
		},
	}
	clock := func() time.Duration { return time.Since(g.start) }
	g.hub.met = obs.New("net", clock)
	for i := 0; i < n; i++ {
		id := ProcessID(fmt.Sprintf("p%02d", i+1))
		g.ids = append(g.ids, id)
		p := &liveProc{
			store:  &stable.Store{},
			timers: make(map[node.TimerKind]*time.Timer),
			g:      g,
			id:     id,
		}
		p.node = node.New(id, nodeCfg, p, p, p.store)
		g.metrics[id] = obs.New(string(id), clock)
		p.node.SetMetrics(g.metrics[id])
		g.procs[id] = p
		g.hub.inbox[id] = make(chan liveEnvelope, 4096)
		g.hub.component[id] = 0
	}
	for _, id := range g.ids {
		p := g.procs[id]
		g.wg.Add(1)
		go p.receive(g.hub.inbox[id], &g.wg)
		p.mu.Lock()
		p.node.Start()
		p.mu.Unlock()
	}
	return g
}

// receive drains the process's inbox into the state machine.
func (p *liveProc) receive(in chan liveEnvelope, wg *sync.WaitGroup) {
	defer wg.Done()
	for env := range in {
		p.mu.Lock()
		if !p.dead {
			p.node.OnMessage(env.from, env.msg)
		}
		p.mu.Unlock()
	}
}

// Broadcast implements transport.Transport over the hub.
func (p *liveProc) Broadcast(msg wire.Message) {
	p.g.hub.broadcast(p.id, msg)
}

// Unicast implements transport.Transport: deliver to one peer of the
// sender's component, subject to the same partition and down cuts as a
// broadcast.
func (p *liveProc) Unicast(to ProcessID, msg wire.Message) {
	p.g.hub.unicast(p.id, to, msg)
}

// Peers implements transport.Transport: the sorted membership of the
// sender's current hub component, including the sender.
func (p *liveProc) Peers() []ProcessID {
	return p.g.hub.peersOf(p.id)
}

// Close implements transport.Transport for one process: its timers stop
// and its state machine goes silent. The group's inboxes and goroutines
// are shared infrastructure and are torn down by LiveGroup.Close.
func (p *liveProc) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dead = true
	for k, t := range p.timers {
		t.Stop()
		delete(p.timers, k)
	}
	return nil
}

// SetTimer implements node.Env with wall-clock timers.
func (p *liveProc) SetTimer(kind node.TimerKind, d time.Duration) {
	if t, ok := p.timers[kind]; ok {
		t.Stop()
	}
	p.timers[kind] = time.AfterFunc(d, func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		if !p.dead {
			p.node.OnTimer(kind)
		}
	})
}

// CancelTimer implements node.Env.
func (p *liveProc) CancelTimer(kind node.TimerKind) {
	if t, ok := p.timers[kind]; ok {
		t.Stop()
		delete(p.timers, kind)
	}
}

// Deliver implements node.Env.
func (p *liveProc) Deliver(d node.Delivery) {
	payload := d.Payload
	if len(payload) > 0 && payload[0] == tagApp {
		payload = payload[1:]
	}
	del := Delivery{
		Msg:     d.Msg,
		Payload: payload,
		Service: d.Service,
		Config:  d.Config,
		Time:    time.Since(p.g.start),
	}
	p.g.mu.Lock()
	p.g.deliveries[p.id] = append(p.g.deliveries[p.id], del)
	obsvs := p.g.observers
	p.g.mu.Unlock()
	// Observers run outside the group lock (they may read group state)
	// but on the process's event path, so per-process event order holds.
	for _, o := range obsvs {
		o.OnDelivery(p.id, del)
	}
}

// DeliverConfig implements node.Env.
func (p *liveProc) DeliverConfig(c node.ConfigChange) {
	ce := ConfigEvent{Config: c.Config, Time: time.Since(p.g.start)}
	p.g.mu.Lock()
	p.g.confs[p.id] = append(p.g.confs[p.id], ce)
	obsvs := p.g.observers
	p.g.mu.Unlock()
	for _, o := range obsvs {
		o.OnConfigChange(p.id, ce)
	}
}

// Trace implements node.Env.
func (p *liveProc) Trace(e model.Event) {
	p.g.mu.Lock()
	p.g.trace.Append(e)
	p.g.mu.Unlock()
}

// broadcast fans a message out to the sender's component.
func (h *liveHub) broadcast(from ProcessID, msg wire.Message) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.down[from] {
		return
	}
	h.met.Inc(obs.CNetBroadcasts)
	comp := h.component[from]
	for id, in := range h.inbox {
		if h.down[id] && id != from {
			h.met.Inc(obs.CNetCut)
			continue
		}
		if h.component[id] != comp {
			h.met.Inc(obs.CNetCut)
			continue
		}
		select {
		case in <- liveEnvelope{from: from, msg: msg}:
			h.met.Inc(obs.CNetDelivered)
		default:
			// Inbox full: the medium is lossy; the protocol's
			// retransmission machinery recovers.
			h.met.Inc(obs.CNetDropped)
		}
	}
}

// unicast delivers a message to one process, honouring the partition map.
func (h *liveHub) unicast(from, to ProcessID, msg wire.Message) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.down[from] {
		return
	}
	in, ok := h.inbox[to]
	if !ok || (h.down[to] && to != from) || h.component[to] != h.component[from] {
		h.met.Inc(obs.CNetCut)
		return
	}
	select {
	case in <- liveEnvelope{from: from, msg: msg}:
		h.met.Inc(obs.CNetDelivered)
	default:
		h.met.Inc(obs.CNetDropped)
	}
}

// peersOf returns the sorted membership of a process's component.
func (h *liveHub) peersOf(of ProcessID) []ProcessID {
	h.mu.Lock()
	defer h.mu.Unlock()
	comp := h.component[of]
	out := make([]ProcessID, 0, len(h.component))
	for id, c := range h.component {
		if c == comp {
			out = append(out, id)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// IDs returns the process identifiers.
func (g *LiveGroup) IDs() []ProcessID {
	out := make([]ProcessID, len(g.ids))
	copy(out, g.ids)
	return out
}

// Send submits an application message at process id.
func (g *LiveGroup) Send(id ProcessID, payload []byte, svc Service) error {
	p, ok := g.procs[id]
	if !ok {
		return fmt.Errorf("unknown process %s", id)
	}
	wrapped := append([]byte{tagApp}, payload...)
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.node.Submit(wrapped, svc)
}

// Submit submits an application message at process id (the
// Cluster-interface name for Send).
func (g *LiveGroup) Submit(id ProcessID, payload []byte, svc Service) error {
	return g.Send(id, payload, svc)
}

// AddObserver registers an additional application-event observer; every
// registered observer sees every delivery and configuration change, in
// registration order. Callbacks run on process goroutines: per-process
// event order is preserved, but callbacks from different processes are
// concurrent and the observer must synchronise its own state.
func (g *LiveGroup) AddObserver(o Observer) {
	if o == nil {
		return
	}
	g.mu.Lock()
	g.observers = append(g.observers, o)
	g.mu.Unlock()
}

// Partition splits the hub into the given components; unmentioned
// processes are isolated.
func (g *LiveGroup) Partition(groups ...[]ProcessID) {
	h := g.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	assigned := make(map[ProcessID]bool)
	for _, grp := range groups {
		h.nextComp++
		for _, id := range grp {
			h.component[id] = h.nextComp
			assigned[id] = true
		}
	}
	for id := range h.component {
		if !assigned[id] {
			h.nextComp++
			h.component[id] = h.nextComp
		}
	}
}

// Merge reunites all processes.
func (g *LiveGroup) Merge() {
	h := g.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextComp++
	for id := range h.component {
		h.component[id] = h.nextComp
	}
}

// Crash fails a process (stable storage survives).
func (g *LiveGroup) Crash(id ProcessID) {
	p := g.procs[id]
	g.hub.mu.Lock()
	g.hub.down[id] = true
	g.hub.mu.Unlock()
	p.mu.Lock()
	p.node.Crash()
	p.mu.Unlock()
}

// Recover restarts a failed process under the same identifier.
func (g *LiveGroup) Recover(id ProcessID) {
	p := g.procs[id]
	g.hub.mu.Lock()
	g.hub.down[id] = false
	g.hub.mu.Unlock()
	p.mu.Lock()
	p.node.Recover()
	p.mu.Unlock()
}

// Deliveries returns a snapshot of the messages delivered at a process.
func (g *LiveGroup) Deliveries(id ProcessID) []Delivery {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Delivery, len(g.deliveries[id]))
	copy(out, g.deliveries[id])
	return out
}

// ConfigChanges returns a snapshot of the configuration changes delivered
// at a process, in order.
func (g *LiveGroup) ConfigChanges(id ProcessID) []ConfigEvent {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]ConfigEvent, len(g.confs[id]))
	copy(out, g.confs[id])
	return out
}

// Configs returns a snapshot of a process's configuration changes, without
// timestamps.
func (g *LiveGroup) Configs(id ProcessID) []Configuration {
	ces := g.ConfigChanges(id)
	out := make([]Configuration, len(ces))
	for i, ce := range ces {
		out[i] = ce.Config
	}
	return out
}

// History returns a snapshot of the formal-model trace of the execution.
func (g *LiveGroup) History() []Event {
	g.mu.Lock()
	defer g.mu.Unlock()
	events := g.trace.Events()
	out := make([]Event, len(events))
	copy(out, events)
	return out
}

// Metrics freezes every process's observability scope, plus the "net" hub
// scope, into one cluster snapshot. Safe to call while the group runs.
func (g *LiveGroup) Metrics() ClusterMetrics {
	return obs.Cluster(g.scopes()...)
}

// ObsEvents returns the merged protocol trace: every scope's retained
// events in one time-ordered stream.
func (g *LiveGroup) ObsEvents() []ObsEvent {
	return obs.MergeEvents(g.scopes()...)
}

// ProcMetrics returns one process's live observability scope (for
// attaching trace sinks or reading individual counters).
func (g *LiveGroup) ProcMetrics(id ProcessID) *obs.Metrics { return g.metrics[id] }

// scopes lists every observability scope: one per process plus the hub.
func (g *LiveGroup) scopes() []*obs.Metrics {
	out := make([]*obs.Metrics, 0, len(g.ids)+1)
	for _, id := range g.ids {
		out = append(out, g.metrics[id])
	}
	return append(out, g.hub.met)
}

// MetricsHandler returns an HTTP handler exposing the group's metrics: the
// Prometheus text exposition format by default, or the expvar-style nested
// JSON document when the request has format=json (or a path ending in
// ".json"). Snapshots are taken per request; the handler is safe while the
// group runs.
func (g *LiveGroup) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cs := g.Metrics()
		if r.URL.Query().Get("format") == "json" || strings.HasSuffix(r.URL.Path, ".json") {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(obs.ExpvarMap(cs))
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = obs.WritePrometheus(w, cs)
	})
}

// ServeMetrics starts an HTTP server exposing MetricsHandler on addr
// (":0" picks a free port) and returns the bound address. The server stops
// when the group is closed. At most one metrics server per group.
func (g *LiveGroup) ServeMetrics(addr string) (string, error) {
	// Bind before taking the group lock: the listen syscall can stall
	// (e.g. slow DNS for a hostname addr), and g.mu serializes the
	// protocol hot path.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("group is closed")
	}
	if g.metricsSrv != nil {
		running := g.metricsSrv.Addr
		g.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("metrics server already running on %s", running)
	}
	srv := &http.Server{Addr: ln.Addr().String(), Handler: g.MetricsHandler()}
	g.metricsSrv = srv
	g.wg.Add(1)
	g.mu.Unlock()
	go func() {
		defer g.wg.Done()
		_ = srv.Serve(ln)
	}()
	return srv.Addr, nil
}

// Mode returns the protocol mode of a process.
func (g *LiveGroup) Mode(id ProcessID) string {
	p := g.procs[id]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.node.Mode().String()
}

// WaitOperational blocks until every live process is operational in the
// same configuration, or the timeout elapses. It reports success.
func (g *LiveGroup) WaitOperational(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if g.operationalTogether() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return g.operationalTogether()
}

// operationalTogether reports whether all non-crashed processes share one
// installed regular configuration.
func (g *LiveGroup) operationalTogether() bool {
	var cfg ConfigID
	g.hub.mu.Lock()
	down := make(map[ProcessID]bool, len(g.hub.down))
	for id, d := range g.hub.down {
		down[id] = d
	}
	g.hub.mu.Unlock()
	for _, id := range g.ids {
		if down[id] {
			continue
		}
		p := g.procs[id]
		p.mu.Lock()
		mode := p.node.Mode()
		c := p.node.CurrentConfig().ID
		p.mu.Unlock()
		if mode != node.Operational {
			return false
		}
		if cfg.IsZero() {
			cfg = c
		} else if cfg != c {
			return false
		}
	}
	return !cfg.IsZero()
}

// WaitDeliveries blocks until process id has delivered at least n
// application messages or the timeout elapses; it reports success.
func (g *LiveGroup) WaitDeliveries(id ProcessID, n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if len(g.Deliveries(id)) >= n {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return len(g.Deliveries(id)) >= n
}

// Check verifies the recorded execution against the EVS specifications.
func (g *LiveGroup) Check(settled bool) []Violation {
	g.mu.Lock()
	events := make([]Event, len(g.trace.Events()))
	copy(events, g.trace.Events())
	g.mu.Unlock()
	return spec.NewChecker(events, spec.Options{Settled: settled}).CheckAll()
}

// Close stops every process, timer, goroutine and the metrics server (if
// one was started). It is idempotent and always returns nil.
func (g *LiveGroup) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	srv := g.metricsSrv
	g.mu.Unlock()

	if srv != nil {
		_ = srv.Close()
	}
	for _, id := range g.ids {
		p := g.procs[id]
		p.mu.Lock()
		p.dead = true
		for k, t := range p.timers {
			t.Stop()
			delete(p.timers, k)
		}
		p.mu.Unlock()
	}
	g.hub.mu.Lock()
	for id, in := range g.hub.inbox {
		close(in)
		delete(g.hub.inbox, id)
	}
	g.hub.mu.Unlock()
	g.wg.Wait()
	return nil
}

package evs

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/node"
	"repro/internal/spec"
	"repro/internal/stable"
	"repro/internal/wire"
)

// LiveGroup runs the same protocol stack as Group, but over real
// goroutines, channels and wall-clock timers instead of the deterministic
// simulator: one receiver goroutine per process, an in-process broadcast
// hub with a mutable partition map, and time.Timer-driven protocol timers.
//
// The simulator remains the right tool for reproducible experiments and
// adversarial schedules; LiveGroup exists to exercise the stack under real
// concurrency (the race detector runs over it in the tests) and to host
// interactive examples. Executions still record the formal-model trace and
// can be verified with Check.
type LiveGroup struct {
	mu    sync.Mutex
	ids   []ProcessID
	procs map[ProcessID]*liveProc
	hub   *liveHub

	trace      spec.History
	deliveries map[ProcessID][]Delivery
	confs      map[ProcessID][]Configuration

	closed bool
	wg     sync.WaitGroup
}

// liveHub is the in-process broadcast medium.
type liveHub struct {
	mu        sync.Mutex
	component map[ProcessID]int
	down      map[ProcessID]bool
	inbox     map[ProcessID]chan liveEnvelope
	nextComp  int
}

type liveEnvelope struct {
	from ProcessID
	msg  wire.Message
}

// liveProc is one process: the node state machine guarded by a mutex, its
// timers, and its receiver goroutine.
type liveProc struct {
	mu     sync.Mutex
	node   *node.Node
	store  *stable.Store
	timers map[node.TimerKind]*time.Timer
	g      *LiveGroup
	id     ProcessID
	dead   bool // stops timer callbacks racing shutdown
}

var _ node.Env = (*liveProc)(nil)

// NewLiveGroup starts n processes named p01..pNN. Call Close when done.
func NewLiveGroup(n int, cfg *node.Config) *LiveGroup {
	if n <= 0 {
		n = 3
	}
	nodeCfg := node.DefaultConfig()
	if cfg != nil {
		nodeCfg = *cfg
	}
	g := &LiveGroup{
		procs:      make(map[ProcessID]*liveProc, n),
		deliveries: make(map[ProcessID][]Delivery),
		confs:      make(map[ProcessID][]Configuration),
		hub: &liveHub{
			component: make(map[ProcessID]int),
			down:      make(map[ProcessID]bool),
			inbox:     make(map[ProcessID]chan liveEnvelope),
		},
	}
	for i := 0; i < n; i++ {
		id := ProcessID(fmt.Sprintf("p%02d", i+1))
		g.ids = append(g.ids, id)
		p := &liveProc{
			store:  &stable.Store{},
			timers: make(map[node.TimerKind]*time.Timer),
			g:      g,
			id:     id,
		}
		p.node = node.New(id, nodeCfg, p, p.store)
		g.procs[id] = p
		g.hub.inbox[id] = make(chan liveEnvelope, 4096)
		g.hub.component[id] = 0
	}
	for _, id := range g.ids {
		p := g.procs[id]
		g.wg.Add(1)
		go p.receive(g.hub.inbox[id], &g.wg)
		p.mu.Lock()
		p.node.Start()
		p.mu.Unlock()
	}
	return g
}

// receive drains the process's inbox into the state machine.
func (p *liveProc) receive(in chan liveEnvelope, wg *sync.WaitGroup) {
	defer wg.Done()
	for env := range in {
		p.mu.Lock()
		if !p.dead {
			p.node.OnMessage(env.from, env.msg)
		}
		p.mu.Unlock()
	}
}

// Broadcast implements node.Env over the hub.
func (p *liveProc) Broadcast(msg wire.Message) {
	p.g.hub.broadcast(p.id, msg)
}

// SetTimer implements node.Env with wall-clock timers.
func (p *liveProc) SetTimer(kind node.TimerKind, d time.Duration) {
	if t, ok := p.timers[kind]; ok {
		t.Stop()
	}
	p.timers[kind] = time.AfterFunc(d, func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		if !p.dead {
			p.node.OnTimer(kind)
		}
	})
}

// CancelTimer implements node.Env.
func (p *liveProc) CancelTimer(kind node.TimerKind) {
	if t, ok := p.timers[kind]; ok {
		t.Stop()
		delete(p.timers, kind)
	}
}

// Deliver implements node.Env.
func (p *liveProc) Deliver(d node.Delivery) {
	payload := d.Payload
	if len(payload) > 0 && payload[0] == tagApp {
		payload = payload[1:]
	}
	p.g.mu.Lock()
	p.g.deliveries[p.id] = append(p.g.deliveries[p.id], Delivery{
		Msg:     d.Msg,
		Payload: payload,
		Service: d.Service,
		Config:  d.Config,
	})
	p.g.mu.Unlock()
}

// DeliverConfig implements node.Env.
func (p *liveProc) DeliverConfig(c node.ConfigChange) {
	p.g.mu.Lock()
	p.g.confs[p.id] = append(p.g.confs[p.id], c.Config)
	p.g.mu.Unlock()
}

// Trace implements node.Env.
func (p *liveProc) Trace(e model.Event) {
	p.g.mu.Lock()
	p.g.trace.Append(e)
	p.g.mu.Unlock()
}

// broadcast fans a message out to the sender's component.
func (h *liveHub) broadcast(from ProcessID, msg wire.Message) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.down[from] {
		return
	}
	comp := h.component[from]
	for id, in := range h.inbox {
		if h.down[id] && id != from {
			continue
		}
		if h.component[id] != comp {
			continue
		}
		select {
		case in <- liveEnvelope{from: from, msg: msg}:
		default:
			// Inbox full: the medium is lossy; the protocol's
			// retransmission machinery recovers.
		}
	}
}

// IDs returns the process identifiers.
func (g *LiveGroup) IDs() []ProcessID {
	out := make([]ProcessID, len(g.ids))
	copy(out, g.ids)
	return out
}

// Send submits an application message at process id.
func (g *LiveGroup) Send(id ProcessID, payload []byte, svc Service) error {
	p, ok := g.procs[id]
	if !ok {
		return fmt.Errorf("unknown process %s", id)
	}
	wrapped := append([]byte{tagApp}, payload...)
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.node.Submit(wrapped, svc)
}

// Partition splits the hub into the given components; unmentioned
// processes are isolated.
func (g *LiveGroup) Partition(groups ...[]ProcessID) {
	h := g.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	assigned := make(map[ProcessID]bool)
	for _, grp := range groups {
		h.nextComp++
		for _, id := range grp {
			h.component[id] = h.nextComp
			assigned[id] = true
		}
	}
	for id := range h.component {
		if !assigned[id] {
			h.nextComp++
			h.component[id] = h.nextComp
		}
	}
}

// Merge reunites all processes.
func (g *LiveGroup) Merge() {
	h := g.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextComp++
	for id := range h.component {
		h.component[id] = h.nextComp
	}
}

// Crash fails a process (stable storage survives).
func (g *LiveGroup) Crash(id ProcessID) {
	p := g.procs[id]
	g.hub.mu.Lock()
	g.hub.down[id] = true
	g.hub.mu.Unlock()
	p.mu.Lock()
	p.node.Crash()
	p.mu.Unlock()
}

// Recover restarts a failed process under the same identifier.
func (g *LiveGroup) Recover(id ProcessID) {
	p := g.procs[id]
	g.hub.mu.Lock()
	g.hub.down[id] = false
	g.hub.mu.Unlock()
	p.mu.Lock()
	p.node.Recover()
	p.mu.Unlock()
}

// Deliveries returns a snapshot of the messages delivered at a process.
func (g *LiveGroup) Deliveries(id ProcessID) []Delivery {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Delivery, len(g.deliveries[id]))
	copy(out, g.deliveries[id])
	return out
}

// Configs returns a snapshot of a process's configuration changes.
func (g *LiveGroup) Configs(id ProcessID) []Configuration {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Configuration, len(g.confs[id]))
	copy(out, g.confs[id])
	return out
}

// Mode returns the protocol mode of a process.
func (g *LiveGroup) Mode(id ProcessID) string {
	p := g.procs[id]
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.node.Mode().String()
}

// WaitOperational blocks until every live process is operational in the
// same configuration, or the timeout elapses. It reports success.
func (g *LiveGroup) WaitOperational(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if g.operationalTogether() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return g.operationalTogether()
}

// operationalTogether reports whether all non-crashed processes share one
// installed regular configuration.
func (g *LiveGroup) operationalTogether() bool {
	var cfg ConfigID
	g.hub.mu.Lock()
	down := make(map[ProcessID]bool, len(g.hub.down))
	for id, d := range g.hub.down {
		down[id] = d
	}
	g.hub.mu.Unlock()
	for _, id := range g.ids {
		if down[id] {
			continue
		}
		p := g.procs[id]
		p.mu.Lock()
		mode := p.node.Mode()
		c := p.node.CurrentConfig().ID
		p.mu.Unlock()
		if mode != node.Operational {
			return false
		}
		if cfg.IsZero() {
			cfg = c
		} else if cfg != c {
			return false
		}
	}
	return !cfg.IsZero()
}

// WaitDeliveries blocks until process id has delivered at least n
// application messages or the timeout elapses; it reports success.
func (g *LiveGroup) WaitDeliveries(id ProcessID, n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if len(g.Deliveries(id)) >= n {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return len(g.Deliveries(id)) >= n
}

// Check verifies the recorded execution against the EVS specifications.
func (g *LiveGroup) Check(settled bool) []Violation {
	g.mu.Lock()
	events := make([]Event, len(g.trace.Events()))
	copy(events, g.trace.Events())
	g.mu.Unlock()
	return spec.NewChecker(events, spec.Options{Settled: settled}).CheckAll()
}

// Close stops every process, timer and goroutine.
func (g *LiveGroup) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	g.mu.Unlock()

	for _, id := range g.ids {
		p := g.procs[id]
		p.mu.Lock()
		p.dead = true
		for k, t := range p.timers {
			t.Stop()
			delete(p.timers, k)
		}
		p.mu.Unlock()
	}
	g.hub.mu.Lock()
	for id, in := range g.hub.inbox {
		close(in)
		delete(g.hub.inbox, id)
	}
	g.hub.mu.Unlock()
	g.wg.Wait()
}

package evs

import (
	"fmt"

	"repro/internal/node"
)

// Runtime selects how an EVS cluster created by New executes.
type Runtime int

const (
	// RuntimeSim is the deterministic simulator (Group): virtual time,
	// seeded schedules, reproducible executions. The default.
	RuntimeSim Runtime = iota
	// RuntimeLive is the in-process hub (LiveGroup): real goroutines and
	// wall-clock timers, shared-memory message handoff.
	RuntimeLive
	// RuntimeUDP runs one daemon per process over real loopback UDP
	// sockets (NetGroup): every message crosses the wire codec and the
	// kernel's network stack.
	RuntimeUDP
	// RuntimeTCP is RuntimeUDP over the TCP mesh transport.
	RuntimeTCP
)

// String names the runtime.
func (r Runtime) String() string {
	switch r {
	case RuntimeSim:
		return "sim"
	case RuntimeLive:
		return "live"
	case RuntimeUDP:
		return "udp"
	case RuntimeTCP:
		return "tcp"
	default:
		return fmt.Sprintf("runtime(%d)", int(r))
	}
}

// newConfig collects New's options.
type newConfig struct {
	runtime   Runtime
	processes []ProcessID
	num       int
	seed      int64
	node      *node.Config
	sim       *Options
}

// Option configures New.
type Option func(*newConfig)

// WithRuntime selects the execution runtime (default RuntimeSim).
func WithRuntime(r Runtime) Option { return func(c *newConfig) { c.runtime = r } }

// WithProcesses names the processes explicitly (simulator runtime only;
// the live and net runtimes generate p01..pNN).
func WithProcesses(ids ...ProcessID) Option {
	return func(c *newConfig) { c.processes = ids }
}

// WithNumProcesses sets the cluster size (default 3).
func WithNumProcesses(n int) Option { return func(c *newConfig) { c.num = n } }

// WithSeed sets the simulator's deterministic seed (ignored by the wall
// clock runtimes, whose schedules the OS owns).
func WithSeed(seed int64) Option { return func(c *newConfig) { c.seed = seed } }

// WithNodeConfig overrides protocol timing. Each runtime has its own
// default profile (simulated-network timings for sim and live, the
// deployment profile for udp/tcp), so set this only to experiment.
func WithNodeConfig(cfg node.Config) Option {
	return func(c *newConfig) { c.node = &cfg }
}

// WithSimOptions passes the full simulator Options through, for sim-only
// knobs (drop/dup rates, delay bounds, primary/VS layers,
// DiscardHistory). Fields covered by other options (Processes,
// NumProcesses, Seed, Node) are overridden by those options when both
// are given.
func WithSimOptions(opts Options) Option {
	return func(c *newConfig) { c.sim = &opts }
}

// New creates an EVS cluster behind the runtime-independent Cluster
// interface: the deterministic simulator by default, or — selected with
// WithRuntime — the in-process live hub or a real-socket loopback
// deployment. Scenario control beyond the Cluster surface (partitions,
// virtual-time scheduling, kills) stays on the concrete types; type-assert
// to *Group, *LiveGroup or *NetGroup when a scenario needs it.
//
//	c, err := evs.New(evs.WithNumProcesses(5), evs.WithRuntime(evs.RuntimeUDP))
//	defer c.Close()
//	c.Submit(c.IDs()[0], []byte("hello"), evs.Safe)
func New(opts ...Option) (Cluster, error) {
	var c newConfig
	for _, o := range opts {
		o(&c)
	}
	n := c.num
	if n <= 0 {
		if len(c.processes) > 0 {
			n = len(c.processes)
		} else if c.sim != nil && c.sim.NumProcesses > 0 {
			n = c.sim.NumProcesses
		} else {
			n = 3
		}
	}
	switch c.runtime {
	case RuntimeSim:
		simOpts := Options{}
		if c.sim != nil {
			simOpts = *c.sim
		}
		if len(c.processes) > 0 {
			simOpts.Processes = c.processes
		}
		simOpts.NumProcesses = n
		if c.seed != 0 {
			simOpts.Seed = c.seed
		}
		if c.node != nil {
			simOpts.Node = c.node
		}
		return NewGroup(simOpts), nil
	case RuntimeLive:
		if len(c.processes) > 0 {
			return nil, fmt.Errorf("evs.New: the live runtime names processes p01..pNN; use WithNumProcesses")
		}
		return NewLiveGroup(n, c.node), nil
	case RuntimeUDP, RuntimeTCP:
		if len(c.processes) > 0 {
			return nil, fmt.Errorf("evs.New: the %s runtime names processes p01..pNN; use WithNumProcesses", c.runtime)
		}
		network := "udp"
		if c.runtime == RuntimeTCP {
			network = "tcp"
		}
		return NewNetGroup(n, network, c.node)
	default:
		return nil, fmt.Errorf("evs.New: unknown runtime %v", c.runtime)
	}
}

package evs

import (
	"repro/internal/node"
	"repro/internal/obs"
)

// Submission errors, re-exported so Cluster callers can test them with
// errors.Is without importing internal packages.
var (
	// ErrDown reports submission at a failed process.
	ErrDown = node.ErrDown
	// ErrBacklog reports backpressure: the process's send backlog is full.
	ErrBacklog = node.ErrBacklog
)

// Metric vocabulary re-exported from the observability layer, so
// applications can consume snapshots without importing internal packages.
type (
	// MetricsSnapshot is one scope's frozen counters, gauges and
	// histograms. Every catalog name is always present, so snapshots from
	// the simulator and the live runtime compare name-for-name.
	MetricsSnapshot = obs.Snapshot
	// ClusterMetrics is a whole deployment's frozen metric state: one
	// MetricsSnapshot per process (plus the "net" medium scope) and the
	// cross-scope total.
	ClusterMetrics = obs.ClusterSnapshot
	// ObsEvent is one structured protocol trace event (budget changes,
	// gather transitions, recovery steps, configuration installs).
	ObsEvent = obs.Event
)

// Observer receives application-level events from a running cluster.
// Observers are additive: any number may be registered with AddObserver and
// each sees every event, in registration order. Callbacks run on the
// cluster's event path — the simulator's single thread, or a process
// goroutine in LiveGroup — and must not block or call back into the
// cluster's mutating API.
type Observer interface {
	// OnDelivery observes an application message delivery at a process.
	OnDelivery(id ProcessID, d Delivery)
	// OnConfigChange observes a configuration change at a process.
	OnConfigChange(id ProcessID, c ConfigEvent)
}

// ObserverFuncs adapts plain functions to Observer; nil fields are skipped.
type ObserverFuncs struct {
	Delivery     func(id ProcessID, d Delivery)
	ConfigChange func(id ProcessID, c ConfigEvent)
}

// OnDelivery implements Observer.
func (o ObserverFuncs) OnDelivery(id ProcessID, d Delivery) {
	if o.Delivery != nil {
		o.Delivery(id, d)
	}
}

// OnConfigChange implements Observer.
func (o ObserverFuncs) OnConfigChange(id ProcessID, c ConfigEvent) {
	if o.ConfigChange != nil {
		o.ConfigChange(id, c)
	}
}

// Cluster is the runtime-independent face of an EVS deployment, implemented
// by both Group (deterministic simulation) and LiveGroup (real goroutines
// and wall-clock timers). Code written against Cluster — applications,
// examples, parity tests — runs unchanged on either runtime.
//
// Scheduling differs by nature between the runtimes (virtual time versus
// wall time), so scenario control (partitions, crashes, timed sends) stays
// on the concrete types; Cluster covers the submission, observation and
// introspection surface.
type Cluster interface {
	// IDs returns the process identifiers.
	IDs() []ProcessID
	// Submit submits an application message at a process immediately. In
	// the simulator "immediately" means at the current virtual time (use
	// Group.Send to schedule ahead).
	Submit(id ProcessID, payload []byte, svc Service) error
	// Deliveries returns the messages delivered to a process, in order.
	Deliveries(id ProcessID) []Delivery
	// ConfigChanges returns the configuration changes delivered to a
	// process, in order.
	ConfigChanges(id ProcessID) []ConfigEvent
	// History returns the formal-model trace of the execution so far.
	History() []Event
	// Metrics freezes every process's observability scope (plus the "net"
	// medium scope) into one cluster snapshot.
	Metrics() ClusterMetrics
	// AddObserver registers an additional application-event observer.
	AddObserver(o Observer)
	// Close releases the deployment's resources. It is idempotent; the
	// simulator has nothing to release and returns nil.
	Close() error
}

var (
	_ Cluster = (*Group)(nil)
	_ Cluster = (*LiveGroup)(nil)
)

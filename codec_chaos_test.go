package evs

import (
	"reflect"
	"testing"
	"time"
)

// runCodecScenario drives one seeded simulation with traffic, a
// partition and a merge, returning the group for inspection.
func runCodecScenario(t *testing.T, opts Options, horizon time.Duration) *Group {
	t.Helper()
	opts.NumProcesses = 4
	g := NewGroup(opts)
	ids := g.IDs()
	for i := 0; i < 10; i++ {
		id := ids[i%len(ids)]
		svc := Agreed
		if i%3 == 0 {
			svc = Safe
		}
		g.Send(time.Duration(100+i*40)*time.Millisecond, id, []byte{byte(i)}, svc)
	}
	g.Partition(600*time.Millisecond, ids[:2], ids[2:])
	g.Send(800*time.Millisecond, ids[0], []byte("left"), Agreed)
	g.Send(800*time.Millisecond, ids[2], []byte("right"), Agreed)
	g.Merge(1100 * time.Millisecond)
	g.Send(1600*time.Millisecond, ids[3], []byte("merged"), Safe)
	g.Run(horizon)
	return g
}

// TestCodecModeIsTransparent: with no transit faults, routing every
// packet through the wire codec must reproduce the struct-handoff
// execution bit for bit — same histories, same deliveries — because
// encode/decode consume no randomness and lose no information. This is
// the differential certification of the encoded path.
func TestCodecModeIsTransparent(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		plain := runCodecScenario(t, Options{Seed: seed}, 3*time.Second)
		coded := runCodecScenario(t, Options{Seed: seed, Codec: true}, 3*time.Second)

		if !reflect.DeepEqual(plain.History(), coded.History()) {
			t.Fatalf("seed %d: codec mode changed the formal-model history", seed)
		}
		for _, id := range plain.IDs() {
			pd, cd := plain.Deliveries(id), coded.Deliveries(id)
			if len(pd) != len(cd) {
				t.Fatalf("seed %d %s: %d vs %d deliveries", seed, id, len(pd), len(cd))
			}
			for i := range pd {
				if pd[i].Msg != cd[i].Msg || string(pd[i].Payload) != string(cd[i].Payload) ||
					pd[i].Time != cd[i].Time {
					t.Fatalf("seed %d %s delivery %d: %+v vs %+v", seed, id, i, pd[i], cd[i])
				}
			}
		}
		st := coded.NetStats()
		if st.DecodeErrors != 0 || st.Corrupted != 0 || st.Truncated != 0 {
			t.Fatalf("seed %d: faults with zero rates: %+v", seed, st)
		}
	}
}

// TestCodecChaosCorruptionSurvives: corrupting and truncating encoded
// frames in transit must be indistinguishable from packet loss — decode
// errors are counted, the frames are dropped, the protocol's recovery
// machinery keeps the execution alive, the specifications still hold,
// and nothing panics.
func TestCodecChaosCorruptionSurvives(t *testing.T) {
	for _, seed := range []int64{3, 11, 29} {
		g := runCodecScenario(t, Options{
			Seed:         seed,
			Codec:        true,
			CorruptRate:  0.04,
			TruncateRate: 0.02,
			DropRate:     0.01,
		}, 8*time.Second) // longer horizon: retransmission needs time to win
		st := g.NetStats()
		if st.Corrupted == 0 && st.Truncated == 0 {
			t.Fatalf("seed %d: chaos rates produced no transit faults (%+v)", seed, st)
		}
		// Almost every fault must surface as a counted decode error (a
		// bit flip can land in payload bytes and still decode; it must
		// never panic or derail the run).
		if st.DecodeErrors == 0 {
			t.Fatalf("seed %d: %d corrupt + %d truncated frames but no decode errors",
				seed, st.Corrupted, st.Truncated)
		}
		if vs := g.Check(true); len(vs) > 0 {
			t.Fatalf("seed %d: spec violations under codec chaos: %v", seed, vs)
		}
		// Traffic still flowed.
		for _, id := range g.IDs() {
			if len(g.Deliveries(id)) == 0 {
				t.Fatalf("seed %d: %s delivered nothing", seed, id)
			}
		}
	}
}

// TestCodecChaosHeavyNeverPanics cranks the fault rates far past
// plausibility: the run may make little progress, but it must neither
// panic nor violate safety.
func TestCodecChaosHeavyNeverPanics(t *testing.T) {
	g := NewGroup(Options{
		NumProcesses: 3,
		Seed:         5,
		Codec:        true,
		CorruptRate:  0.35,
		TruncateRate: 0.25,
	})
	ids := g.IDs()
	for i := 0; i < 6; i++ {
		g.Send(time.Duration(150+i*100)*time.Millisecond, ids[i%3], []byte{byte(i)}, Agreed)
	}
	g.Run(4 * time.Second)
	if st := g.NetStats(); st.DecodeErrors == 0 {
		t.Fatalf("no decode errors at extreme fault rates: %+v", st)
	}
	if vs := g.Check(false); len(vs) > 0 {
		t.Fatalf("safety violated under extreme codec chaos: %v", vs)
	}
}

package evs

import (
	"fmt"
	"testing"
	"time"
)

// The live runtime runs the same stack under real concurrency; these tests
// are timing-dependent by nature, so they use generous timeouts and assert
// semantic properties (ordering, conformance), not schedules.

func TestLiveGroupFormsAndDelivers(t *testing.T) {
	g := NewLiveGroup(3, nil)
	defer g.Close()
	if !g.WaitOperational(5 * time.Second) {
		t.Fatal("live group did not become operational")
	}
	ids := g.IDs()
	if err := g.Send(ids[0], []byte("hello"), Safe); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if !g.WaitDeliveries(id, 1, 5*time.Second) {
			t.Fatalf("%s did not deliver", id)
		}
	}
	for _, id := range ids {
		ds := g.Deliveries(id)
		if string(ds[0].Payload) != "hello" || ds[0].Service != Safe {
			t.Fatalf("%s delivery %+v", id, ds[0])
		}
	}
	if vs := g.Check(false); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestLiveGroupTotalOrderUnderConcurrentSenders(t *testing.T) {
	g := NewLiveGroup(4, nil)
	defer g.Close()
	if !g.WaitOperational(5 * time.Second) {
		t.Fatal("live group did not become operational")
	}
	ids := g.IDs()
	const perSender = 25
	done := make(chan error, len(ids))
	for _, id := range ids {
		id := id
		go func() {
			for i := 0; i < perSender; i++ {
				if err := g.Send(id, []byte(fmt.Sprintf("%s/%d", id, i)), Agreed); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for range ids {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	total := perSender * len(ids)
	for _, id := range ids {
		if !g.WaitDeliveries(id, total, 10*time.Second) {
			t.Fatalf("%s delivered %d of %d", id, len(g.Deliveries(id)), total)
		}
	}
	// Identical delivery order everywhere.
	ref := g.Deliveries(ids[0])
	for _, id := range ids[1:] {
		ds := g.Deliveries(id)
		for i := range ref {
			if ds[i].Msg != ref[i].Msg {
				t.Fatalf("%s diverges at %d: %v vs %v", id, i, ds[i].Msg, ref[i].Msg)
			}
		}
	}
	if vs := g.Check(false); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestLiveGroupPartitionAndMerge(t *testing.T) {
	g := NewLiveGroup(4, nil)
	defer g.Close()
	if !g.WaitOperational(5 * time.Second) {
		t.Fatal("initial formation failed")
	}
	ids := g.IDs()
	g.Partition(ids[:2], ids[2:])
	// Both components keep operating: sends succeed and deliver within
	// each side.
	deadline := time.Now().Add(5 * time.Second)
	leftOK, rightOK := false, false
	for time.Now().Before(deadline) && (!leftOK || !rightOK) {
		_ = g.Send(ids[0], []byte("L"), Agreed)
		_ = g.Send(ids[2], []byte("R"), Agreed)
		time.Sleep(20 * time.Millisecond)
		leftOK = hasPayload(g.Deliveries(ids[1]), "L")
		rightOK = hasPayload(g.Deliveries(ids[3]), "R")
	}
	if !leftOK || !rightOK {
		t.Fatalf("partitioned progress: left=%v right=%v", leftOK, rightOK)
	}
	// No cross-component leakage.
	if hasPayload(g.Deliveries(ids[0]), "R") || hasPayload(g.Deliveries(ids[3]), "L") {
		t.Fatal("messages leaked across the partition")
	}
	g.Merge()
	if !g.WaitOperational(10 * time.Second) {
		t.Fatal("merge did not converge")
	}
	if vs := g.Check(false); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestLiveGroupCrashRecover(t *testing.T) {
	g := NewLiveGroup(3, nil)
	defer g.Close()
	if !g.WaitOperational(5 * time.Second) {
		t.Fatal("initial formation failed")
	}
	ids := g.IDs()
	g.Crash(ids[2])
	if err := g.Send(ids[2], nil, Safe); err == nil {
		t.Fatal("send at crashed process should fail")
	}
	// Survivors reconfigure and keep delivering.
	deadline := time.Now().Add(5 * time.Second)
	ok := false
	for time.Now().Before(deadline) && !ok {
		_ = g.Send(ids[0], []byte("while-down"), Safe)
		time.Sleep(20 * time.Millisecond)
		ok = hasPayload(g.Deliveries(ids[1]), "while-down")
	}
	if !ok {
		t.Fatal("survivors made no progress after the crash")
	}
	g.Recover(ids[2])
	if !g.WaitOperational(10 * time.Second) {
		t.Fatalf("recovered process did not rejoin (mode %s)", g.Mode(ids[2]))
	}
	if vs := g.Check(false); len(vs) != 0 {
		t.Fatalf("violations: %v", vs)
	}
}

func TestLiveGroupCloseIdempotent(t *testing.T) {
	g := NewLiveGroup(2, nil)
	if !g.WaitOperational(5 * time.Second) {
		t.Fatal("formation failed")
	}
	g.Close()
	g.Close() // must not panic or deadlock
}

func hasPayload(ds []Delivery, want string) bool {
	for _, d := range ds {
		if string(d.Payload) == want {
			return true
		}
	}
	return false
}

package evs

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"
)

// collectPayloads renders a process's delivery sequence for comparison.
func collectPayloads(c Cluster, id ProcessID) []string {
	var out []string
	for _, d := range c.Deliveries(id) {
		out = append(out, string(d.Payload))
	}
	return out
}

// snapshotNames returns the sorted metric name sets of a snapshot.
func snapshotNames(s MetricsSnapshot) (counters, gauges, hists []string) {
	for k := range s.Counters {
		counters = append(counters, k)
	}
	for k := range s.Gauges {
		gauges = append(gauges, k)
	}
	for k := range s.Histograms {
		hists = append(hists, k)
	}
	sort.Strings(counters)
	sort.Strings(gauges)
	sort.Strings(hists)
	return
}

// TestClusterParityGroupVsLive drives the same scenario through the
// runtime-independent Cluster interface on both runtimes and checks that
// what the application observes — delivery sequences, final configuration,
// metric vocabulary — is identical.
func TestClusterParityGroupVsLive(t *testing.T) {
	payloads := []string{"alpha", "bravo", "charlie"}

	// Simulator: submit at virtual time 500ms (well after formation),
	// observing only through the Cluster interface.
	g := NewGroup(Options{NumProcesses: 3, Seed: 7})
	var sim Cluster = g
	g.At(500*time.Millisecond, func() {
		for _, p := range payloads {
			if err := sim.Submit(sim.IDs()[0], []byte(p), Safe); err != nil {
				t.Errorf("sim submit %q: %v", p, err)
			}
		}
	})
	g.Run(3 * time.Second)
	defer sim.Close()

	// Live runtime: same scenario under real concurrency.
	lg := NewLiveGroup(3, nil)
	var live Cluster = lg
	defer live.Close()
	if !lg.WaitOperational(10 * time.Second) {
		t.Fatal("live group did not form")
	}
	for _, p := range payloads {
		if err := live.Submit(live.IDs()[0], []byte(p), Safe); err != nil {
			t.Fatalf("live submit %q: %v", p, err)
		}
	}
	for _, id := range lg.IDs() {
		if !lg.WaitDeliveries(id, len(payloads), 10*time.Second) {
			t.Fatalf("live %s delivered %d of %d", id, len(live.Deliveries(id)), len(payloads))
		}
	}

	// Identical process identifiers.
	if !reflect.DeepEqual(sim.IDs(), live.IDs()) {
		t.Fatalf("IDs diverge: sim=%v live=%v", sim.IDs(), live.IDs())
	}

	// Identical delivery sequences, per process and across runtimes.
	want := payloads
	for _, c := range []Cluster{sim, live} {
		for _, id := range c.IDs() {
			if got := collectPayloads(c, id); !reflect.DeepEqual(got, want) {
				t.Errorf("deliveries at %s = %v, want %v", id, got, want)
			}
		}
	}

	// Both runtimes install a final 3-member configuration and report
	// configuration changes through the same accessor.
	for _, c := range []Cluster{sim, live} {
		for _, id := range c.IDs() {
			ccs := c.ConfigChanges(id)
			if len(ccs) == 0 {
				t.Fatalf("%s has no configuration changes", id)
			}
			last := ccs[len(ccs)-1].Config
			if last.Members.Size() != 3 {
				t.Errorf("%s final config has %d members", id, last.Members.Size())
			}
		}
		if len(c.History()) == 0 {
			t.Error("empty formal-model history")
		}
	}

	// The metric vocabulary must be identical between the runtimes: same
	// scope names, same counter/gauge/histogram catalogs, so dashboards
	// and comparisons work series-for-series.
	sm, lm := sim.Metrics(), live.Metrics()
	if !reflect.DeepEqual(sm.ProcNames(), lm.ProcNames()) {
		t.Errorf("scope names diverge: sim=%v live=%v", sm.ProcNames(), lm.ProcNames())
	}
	sc, sg, sh := snapshotNames(sm.Total)
	lc, lgn, lh := snapshotNames(lm.Total)
	if !reflect.DeepEqual(sc, lc) || !reflect.DeepEqual(sg, lgn) || !reflect.DeepEqual(sh, lh) {
		t.Error("metric name sets diverge between runtimes")
	}
	// Both executions did real protocol work.
	for _, tot := range []MetricsSnapshot{sm.Total, lm.Total} {
		if tot.Counters["totem_token_rotations_total"] == 0 {
			t.Error("no token rotations recorded")
		}
		if tot.Counters["totem_msgs_delivered_total"] == 0 {
			t.Error("no deliveries recorded")
		}
	}
}

// taggingObserver appends "tag:kind" notes to a shared log.
type taggingObserver struct {
	tag string
	log *[]string
}

func (o taggingObserver) OnDelivery(id ProcessID, d Delivery) {
	*o.log = append(*o.log, o.tag+":del")
}

func (o taggingObserver) OnConfigChange(id ProcessID, c ConfigEvent) {
	*o.log = append(*o.log, o.tag+":cfg")
}

// TestMultiObserverRegistrationOrder: every registered observer sees every
// event, in registration order.
func TestMultiObserverRegistrationOrder(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 2, Seed: 3})
	var log []string
	g.AddObserver(ObserverFuncs{
		Delivery: func(id ProcessID, d Delivery) { log = append(log, "field:del") },
	})
	g.AddObserver(taggingObserver{"a", &log})
	g.AddObserver(taggingObserver{"b", &log})
	g.AddObserver(taggingObserver{"c", &log})
	g.Send(500*time.Millisecond, g.IDs()[0], []byte("x"), Safe)
	g.Run(2 * time.Second)

	var dels []string
	for _, e := range log {
		if strings.HasSuffix(e, ":del") {
			dels = append(dels, e)
		}
	}
	// 2 processes deliver once each; each delivery logs field, a, b, c.
	want := []string{
		"field:del", "a:del", "b:del", "c:del",
		"field:del", "a:del", "b:del", "c:del",
	}
	if !reflect.DeepEqual(dels, want) {
		t.Fatalf("delivery observer order = %v, want %v", dels, want)
	}
	// Observers also saw configuration changes.
	counts := map[string]int{}
	for _, e := range log {
		if strings.HasSuffix(e, ":cfg") {
			counts[strings.TrimSuffix(e, ":cfg")]++
		}
	}
	if counts["a"] == 0 || counts["a"] != counts["b"] || counts["b"] != counts["c"] {
		t.Fatalf("config observer counts diverge: %v", counts)
	}
}

// TestNewTopicsAfterStartFails: the group layer derives state from the
// complete total order, so attaching it after the simulation has begun
// must fail loudly instead of silently missing the prefix.
func TestNewTopicsAfterStartFails(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 2, Seed: 1})
	if _, err := NewTopics(g); err != nil {
		t.Fatalf("before start: %v", err)
	}
	g.Run(time.Second)
	if _, err := NewTopics(g); !errors.Is(err, ErrStarted) {
		t.Fatalf("after start: err = %v, want ErrStarted", err)
	}
}

// TestLiveGroupObserversAndMetricsUnderRace drives a LiveGroup with a
// registered observer while concurrently snapshotting metrics and serving
// the HTTP endpoint — the -race CI step leans on this test.
func TestLiveGroupObserversAndMetricsUnderRace(t *testing.T) {
	g := NewLiveGroup(3, nil)
	defer g.Close()
	if !g.WaitOperational(10 * time.Second) {
		t.Fatal("live group did not form")
	}
	var c Cluster = g

	type note struct {
		id      ProcessID
		payload string
	}
	notes := make(chan note, 64)
	c.AddObserver(ObserverFuncs{
		Delivery: func(id ProcessID, d Delivery) {
			notes <- note{id, string(d.Payload)}
		},
	})

	// Snapshot metrics concurrently with protocol traffic.
	stop := make(chan struct{})
	snapDone := make(chan struct{})
	go func() {
		defer close(snapDone)
		for {
			select {
			case <-stop:
				return
			default:
				_ = c.Metrics()
				_ = g.ObsEvents()
			}
		}
	}()

	addr, err := g.ServeMetrics("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ServeMetrics("127.0.0.1:0"); err == nil {
		t.Error("second ServeMetrics should fail while one is running")
	}

	const n = 10
	for i := 0; i < n; i++ {
		if err := c.Submit(c.IDs()[0], []byte(fmt.Sprintf("m%d", i)), Agreed); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range g.IDs() {
		if !g.WaitDeliveries(id, n, 10*time.Second) {
			t.Fatalf("%s delivered %d of %d", id, len(c.Deliveries(id)), n)
		}
	}
	// The observer saw every delivery at every process.
	seen := map[ProcessID]int{}
	deadline := time.After(5 * time.Second)
	for total := 0; total < n*len(g.IDs()); {
		select {
		case nt := <-notes:
			seen[nt.id]++
			total++
		case <-deadline:
			t.Fatalf("observer saw %v, want %d each", seen, n)
		}
	}

	// The endpoint serves Prometheus text with catalog series...
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "evs_totem_token_rotations_total") {
		t.Error("prometheus endpoint missing token rotation series")
	}
	// ...and JSON when asked.
	resp, err = http.Get("http://" + addr + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	jbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "json") {
		t.Errorf("json format served Content-Type %q", ct)
	}
	if !strings.Contains(string(jbody), "totem_token_rotations_total") {
		t.Error("json endpoint missing token rotation series")
	}

	close(stop)
	<-snapDone
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Closing stops the endpoint.
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("metrics endpoint still serving after Close")
	}
}

package evs

import (
	"testing"
	"time"
)

func TestTopicsJoinSendDeliver(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 4, Seed: 41})
	top, _ := NewTopics(g)
	ids := g.IDs()

	top.Join(200*time.Millisecond, ids[0], "chat")
	top.Join(210*time.Millisecond, ids[1], "chat")
	top.Join(220*time.Millisecond, ids[2], "news")
	top.Send(400*time.Millisecond, ids[0], "chat", []byte("hello chat"))
	top.Send(420*time.Millisecond, ids[2], "news", []byte("hello news"))
	g.Run(time.Second)

	// chat members see the chat message; the news subscriber does not.
	for _, id := range ids[:2] {
		ds := top.Deliveries(id, "chat")
		if len(ds) != 1 || string(ds[0].Payload) != "hello chat" {
			t.Fatalf("%s chat deliveries %+v", id, ds)
		}
	}
	if ds := top.Deliveries(ids[2], "chat"); len(ds) != 0 {
		t.Fatalf("news subscriber received chat traffic: %+v", ds)
	}
	if ds := top.Deliveries(ids[3], "chat"); len(ds) != 0 {
		t.Fatalf("non-subscriber received chat traffic: %+v", ds)
	}
	// Views converged identically at chat members.
	va := top.View(ids[0], "chat")
	vb := top.View(ids[1], "chat")
	if !va.Members.Equal(NewProcessSet(ids[0], ids[1])) || !va.Members.Equal(vb.Members) {
		t.Fatalf("chat views %v / %v", va, vb)
	}
	requireCleanGroup(t, g, true)
}

func TestTopicsPartitionShrinksViews(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 4, Seed: 42})
	top, _ := NewTopics(g)
	ids := g.IDs()
	for i, id := range ids {
		top.Join(time.Duration(200+10*i)*time.Millisecond, id, "g")
	}
	g.Partition(500*time.Millisecond, ids[:2], ids[2:])
	g.Run(1200 * time.Millisecond)

	left := top.View(ids[0], "g")
	right := top.View(ids[2], "g")
	if !left.Members.Equal(NewProcessSet(ids[0], ids[1])) {
		t.Fatalf("left view %v, want {p01,p02}", left)
	}
	if !right.Members.Equal(NewProcessSet(ids[2], ids[3])) {
		t.Fatalf("right view %v, want {p03,p04}", right)
	}

	// Remerge: views grow back to all four.
	g.Merge(1300 * time.Millisecond)
	g.Run(2 * time.Second)
	if v := top.View(ids[0], "g"); !v.Members.Equal(NewProcessSet(ids...)) {
		t.Fatalf("post-merge view %v, want all four", v)
	}
	requireCleanGroup(t, g, true)
}

func TestTopicsLeave(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 3, Seed: 43})
	top, _ := NewTopics(g)
	ids := g.IDs()
	top.Join(200*time.Millisecond, ids[0], "g")
	top.Join(210*time.Millisecond, ids[1], "g")
	top.Leave(400*time.Millisecond, ids[1], "g")
	top.Send(600*time.Millisecond, ids[0], "g", []byte("after-leave"))
	g.Run(1200 * time.Millisecond)

	if ds := top.Deliveries(ids[1], "g"); len(ds) != 0 {
		t.Fatalf("left member received %+v", ds)
	}
	if ds := top.Deliveries(ids[0], "g"); len(ds) != 1 {
		t.Fatalf("remaining member deliveries %+v", ds)
	}
	if v := top.View(ids[0], "g"); !v.Members.Equal(NewProcessSet(ids[0])) {
		t.Fatalf("view after leave %v, want {p01}", v)
	}
	requireCleanGroup(t, g, true)
}

func TestTopicsViewsOrderedIdentically(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 3, Seed: 44})
	top, _ := NewTopics(g)
	ids := g.IDs()
	// Everyone joins and leaves in a scramble; views derive from the
	// safe total order, so each member's view sequence for the group
	// must be identical (restricted to views both observed).
	top.Join(200*time.Millisecond, ids[0], "g")
	top.Join(205*time.Millisecond, ids[1], "g")
	top.Join(210*time.Millisecond, ids[2], "g")
	top.Leave(300*time.Millisecond, ids[1], "g")
	top.Join(350*time.Millisecond, ids[1], "g")
	g.Run(time.Second)

	a := top.Views(ids[0], "g")
	c := top.Views(ids[2], "g")
	// Compare the view membership sequences from the point both were
	// members (skip leading views before each joined).
	tailA := a[len(a)-3:]
	tailC := c[len(c)-3:]
	for i := range tailA {
		if !tailA[i].Members.Equal(tailC[i].Members) {
			t.Fatalf("view sequences diverge at %d: %v vs %v", i, tailA[i], tailC[i])
		}
	}
	requireCleanGroup(t, g, true)
}

package evs

import (
	"testing"
	"time"
)

func TestTopicsJoinSendDeliver(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 4, Seed: 41})
	top, _ := NewTopics(g)
	ids := g.IDs()

	top.Join(200*time.Millisecond, ids[0], "chat")
	top.Join(210*time.Millisecond, ids[1], "chat")
	top.Join(220*time.Millisecond, ids[2], "news")
	top.Send(400*time.Millisecond, ids[0], "chat", []byte("hello chat"))
	top.Send(420*time.Millisecond, ids[2], "news", []byte("hello news"))
	g.Run(time.Second)

	// chat members see the chat message; the news subscriber does not.
	for _, id := range ids[:2] {
		ds := top.Deliveries(id, "chat")
		if len(ds) != 1 || string(ds[0].Payload) != "hello chat" {
			t.Fatalf("%s chat deliveries %+v", id, ds)
		}
	}
	if ds := top.Deliveries(ids[2], "chat"); len(ds) != 0 {
		t.Fatalf("news subscriber received chat traffic: %+v", ds)
	}
	if ds := top.Deliveries(ids[3], "chat"); len(ds) != 0 {
		t.Fatalf("non-subscriber received chat traffic: %+v", ds)
	}
	// Views converged identically at chat members.
	va := top.View(ids[0], "chat")
	vb := top.View(ids[1], "chat")
	if !va.Members.Equal(NewProcessSet(ids[0], ids[1])) || !va.Members.Equal(vb.Members) {
		t.Fatalf("chat views %v / %v", va, vb)
	}
	requireCleanGroup(t, g, true)
}

func TestTopicsPartitionShrinksViews(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 4, Seed: 42})
	top, _ := NewTopics(g)
	ids := g.IDs()
	for i, id := range ids {
		top.Join(time.Duration(200+10*i)*time.Millisecond, id, "g")
	}
	g.Partition(500*time.Millisecond, ids[:2], ids[2:])
	g.Run(1200 * time.Millisecond)

	left := top.View(ids[0], "g")
	right := top.View(ids[2], "g")
	if !left.Members.Equal(NewProcessSet(ids[0], ids[1])) {
		t.Fatalf("left view %v, want {p01,p02}", left)
	}
	if !right.Members.Equal(NewProcessSet(ids[2], ids[3])) {
		t.Fatalf("right view %v, want {p03,p04}", right)
	}

	// Remerge: views grow back to all four.
	g.Merge(1300 * time.Millisecond)
	g.Run(2 * time.Second)
	if v := top.View(ids[0], "g"); !v.Members.Equal(NewProcessSet(ids...)) {
		t.Fatalf("post-merge view %v, want all four", v)
	}
	requireCleanGroup(t, g, true)
}

func TestTopicsLeave(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 3, Seed: 43})
	top, _ := NewTopics(g)
	ids := g.IDs()
	top.Join(200*time.Millisecond, ids[0], "g")
	top.Join(210*time.Millisecond, ids[1], "g")
	top.Leave(400*time.Millisecond, ids[1], "g")
	top.Send(600*time.Millisecond, ids[0], "g", []byte("after-leave"))
	g.Run(1200 * time.Millisecond)

	if ds := top.Deliveries(ids[1], "g"); len(ds) != 0 {
		t.Fatalf("left member received %+v", ds)
	}
	if ds := top.Deliveries(ids[0], "g"); len(ds) != 1 {
		t.Fatalf("remaining member deliveries %+v", ds)
	}
	if v := top.View(ids[0], "g"); !v.Members.Equal(NewProcessSet(ids[0])) {
		t.Fatalf("view after leave %v, want {p01}", v)
	}
	requireCleanGroup(t, g, true)
}

func TestTopicsViewsOrderedIdentically(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 3, Seed: 44})
	top, _ := NewTopics(g)
	ids := g.IDs()
	// Everyone joins and leaves in a scramble; views derive from the
	// safe total order, so each member's view sequence for the group
	// must be identical (restricted to views both observed).
	top.Join(200*time.Millisecond, ids[0], "g")
	top.Join(205*time.Millisecond, ids[1], "g")
	top.Join(210*time.Millisecond, ids[2], "g")
	top.Leave(300*time.Millisecond, ids[1], "g")
	top.Join(350*time.Millisecond, ids[1], "g")
	g.Run(time.Second)

	a := top.Views(ids[0], "g")
	c := top.Views(ids[2], "g")
	// Compare the view membership sequences from the point both were
	// members (skip leading views before each joined).
	tailA := a[len(a)-3:]
	tailC := c[len(c)-3:]
	for i := range tailA {
		if !tailA[i].Members.Equal(tailC[i].Members) {
			t.Fatalf("view sequences diverge at %d: %v vs %v", i, tailA[i], tailC[i])
		}
	}
	requireCleanGroup(t, g, true)
}

func TestTopicsClientMultiplexing(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 3, Seed: 45})
	top, _ := NewTopicsWith(g, TopicsOptions{RetainClientQueues: true})
	ids := g.IDs()

	// Clients 1,2 live on p01; client 3 on p02. All subscribe to "m";
	// client 3 also subscribes to "other" via a batch.
	top.ClientJoin(200*time.Millisecond, ids[0], 1, "m")
	top.ClientJoin(210*time.Millisecond, ids[0], 2, "m")
	top.ClientBatch(220*time.Millisecond, ids[1], []ClientOp{
		{Client: 3, Group: "m"},
		{Client: 3, Group: "other"},
	})
	top.ClientSend(400*time.Millisecond, ids[1], 3, "m", []byte("from-3"))
	g.Run(time.Second)

	// The host view counts hosts as members and clients in total.
	v := top.View(ids[0], "m")
	if !v.Members.Equal(NewProcessSet(ids[0], ids[1])) || v.Clients != 3 {
		t.Fatalf("client group view %+v, want hosts {p01,p02} clients 3", v)
	}
	// Every subscribed client received the message; the delivery names
	// the sending endpoint.
	for _, c := range []ClientID{1, 2} {
		q := top.ClientQueue(ids[0], c)
		if len(q) != 1 || string(q[0].Payload) != "from-3" || q[0].Client != 3 || q[0].Sender != ids[1] {
			t.Fatalf("client %d queue %+v", c, q)
		}
	}
	if n := top.ClientDeliveries(ids[1], 3); n != 1 {
		t.Fatalf("sender's own client deliveries %d, want 1", n)
	}
	// p03 hosts no subscriber: the data message was dropped on the
	// header peek, and the drop is visible in the metric catalog.
	if f := top.Filtered(ids[2]); f == 0 {
		t.Fatal("non-member host filtered nothing")
	}
	snap := g.Metrics()
	if got := snap.Procs[string(ids[2])].Counters["groups_filtered_total"]; got != top.Filtered(ids[2]) {
		t.Fatalf("groups_filtered_total %d, want %d", got, top.Filtered(ids[2]))
	}
	requireCleanGroup(t, g, true)
}

func TestTopicsDiscardHistoryCountsOnly(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 3, Seed: 46})
	top, _ := NewTopicsWith(g, TopicsOptions{DiscardHistory: true})
	ids := g.IDs()
	top.Join(200*time.Millisecond, ids[0], "g")
	top.Join(210*time.Millisecond, ids[1], "g")
	top.Send(400*time.Millisecond, ids[0], "g", []byte("x"))
	top.Send(420*time.Millisecond, ids[1], "g", []byte("y"))
	g.Run(time.Second)

	if evs := top.Events(ids[0]); evs != nil {
		t.Fatalf("discard mode retained %d events", len(evs))
	}
	if ds := top.Deliveries(ids[0], "g"); ds != nil {
		t.Fatalf("discard mode retained deliveries %+v", ds)
	}
	if n := top.DeliveryCount(ids[0]); n != 2 {
		t.Fatalf("delivery count %d, want 2", n)
	}
	// Live views still work: they come from mux state, not history.
	if v := top.View(ids[0], "g"); !v.Members.Equal(NewProcessSet(ids[0], ids[1])) {
		t.Fatalf("discard-mode view %+v", v)
	}
	requireCleanGroup(t, g, true)
}

func TestTopicsSymbolTablesConvergeAcrossPartition(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 4, Seed: 47})
	top, _ := NewTopics(g)
	ids := g.IDs()
	for i, id := range ids {
		top.Join(time.Duration(200+5*i)*time.Millisecond, id, "shared")
	}
	top.Join(230*time.Millisecond, ids[0], "left-only")
	g.Partition(400*time.Millisecond, ids[:2], ids[2:])
	// Each side interns fresh names while partitioned.
	top.Join(700*time.Millisecond, ids[0], "east")
	top.Join(710*time.Millisecond, ids[2], "west")
	g.Run(1200 * time.Millisecond)
	if a, b := top.SymbolFingerprint(ids[0]), top.SymbolFingerprint(ids[1]); a != b {
		t.Fatalf("left component symbol tables diverged: %x vs %x", a, b)
	}
	if c, d := top.SymbolFingerprint(ids[2]), top.SymbolFingerprint(ids[3]); c != d {
		t.Fatalf("right component symbol tables diverged: %x vs %x", c, d)
	}
	// After the merge every process re-announces into one epoch: all
	// four tables must be byte-identical again.
	g.Merge(1300 * time.Millisecond)
	g.Run(2200 * time.Millisecond)
	want := top.SymbolFingerprint(ids[0])
	for _, id := range ids[1:] {
		if got := top.SymbolFingerprint(id); got != want {
			t.Fatalf("post-merge symbol table at %s: %x != %x", id, got, want)
		}
	}
	// And the shared group's view regrew to all four hosts.
	if v := top.View(ids[3], "shared"); !v.Members.Equal(NewProcessSet(ids...)) {
		t.Fatalf("post-merge shared view %+v", v)
	}
	requireCleanGroup(t, g, true)
}

func TestTopicsTransitionalViewShrinks(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 4, Seed: 48})
	top, _ := NewTopics(g)
	ids := g.IDs()
	for i, id := range ids {
		top.Join(time.Duration(200+5*i)*time.Millisecond, id, "g")
	}
	g.Partition(500*time.Millisecond, ids[:2], ids[2:])
	g.Run(1500 * time.Millisecond)
	// Among the views p01 observed there must be one tagged with a
	// transitional configuration whose membership already shrank: the
	// group-level rendering of the transitional configuration, emitted
	// by OnConfig before the new regular epoch installs.
	var sawTransitional bool
	for _, v := range top.Views(ids[0], "g") {
		if v.Config.IsTransitional() && v.Members.Equal(NewProcessSet(ids[0], ids[1])) {
			sawTransitional = true
		}
	}
	if !sawTransitional {
		t.Fatalf("no shrunken transitional view at p01; views: %+v", top.Views(ids[0], "g"))
	}
	requireCleanGroup(t, g, true)
}

package evs

import (
	"fmt"
	"testing"
	"time"
)

func requireCleanGroup(t *testing.T, g *Group, settled bool) {
	t.Helper()
	if vs := g.Check(settled); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("violation: %v", v)
		}
		t.Fatalf("%d specification violations", len(vs))
	}
}

func requireCleanVS(t *testing.T, g *Group, settled bool) {
	t.Helper()
	if vs := g.CheckVS(settled); len(vs) != 0 {
		for _, v := range vs {
			t.Errorf("vs violation: %v", v)
		}
		t.Fatalf("%d virtual synchrony violations", len(vs))
	}
}

func TestGroupQuickstart(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 3, Seed: 1})
	ids := g.IDs()
	g.Send(100*time.Millisecond, ids[0], []byte("hello"), Safe)
	g.Run(500 * time.Millisecond)
	for _, id := range ids {
		ds := g.Deliveries(id)
		if len(ds) != 1 || string(ds[0].Payload) != "hello" {
			t.Fatalf("%s deliveries %v", id, ds)
		}
		if ds[0].Msg.Sender != ids[0] || ds[0].Service != Safe {
			t.Fatalf("%s delivery metadata %+v", id, ds[0])
		}
	}
	requireCleanGroup(t, g, true)
}

func TestGroupPrimaryLayerMarksMajority(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 5, Seed: 2, EnablePrimary: true})
	ids := g.IDs()
	g.Partition(300*time.Millisecond, ids[:3], ids[3:])
	g.Run(time.Second)

	// The majority side {p1,p2,p3} must have decided primary; the
	// minority side must have decided non-primary.
	lastVerdict := func(id ProcessID) *PrimaryEvent {
		evs := g.PrimaryEvents(id)
		if len(evs) == 0 {
			return nil
		}
		return &evs[len(evs)-1]
	}
	for _, id := range ids[:3] {
		v := lastVerdict(id)
		if v == nil || !v.Primary {
			t.Fatalf("%s: majority side verdict %+v, want primary", id, v)
		}
	}
	for _, id := range ids[3:] {
		v := lastVerdict(id)
		if v == nil || v.Primary {
			t.Fatalf("%s: minority side verdict %+v, want non-primary", id, v)
		}
	}
	requireCleanGroup(t, g, true)
}

func TestGroupPrimaryUniquenessUnderChurn(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 5, Seed: 3, EnablePrimary: true})
	ids := g.IDs()
	g.Partition(250*time.Millisecond, ids[:3], ids[3:])
	g.Partition(500*time.Millisecond, ids[:2], ids[2:])
	g.Merge(750 * time.Millisecond)
	g.Partition(1000*time.Millisecond, ids[1:], ids[:1])
	g.Merge(1250 * time.Millisecond)
	g.Run(2 * time.Second)
	// Check() includes primary Uniqueness and Continuity.
	requireCleanGroup(t, g, true)
}

func TestGroupVSLayerDeliversInViews(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 3, Seed: 4, EnableVS: true})
	ids := g.IDs()
	g.Send(300*time.Millisecond, ids[0], []byte("m1"), Safe)
	g.Send(350*time.Millisecond, ids[1], []byte("m2"), Safe)
	g.Run(time.Second)

	for _, id := range ids {
		var views, delivers int
		for _, e := range g.VSEvents(id) {
			if e.ViewChange != nil {
				views++
			}
			if e.Deliver != nil {
				delivers++
			}
		}
		if views == 0 {
			t.Fatalf("%s saw no view changes", id)
		}
		if delivers != 2 {
			t.Fatalf("%s saw %d VS deliveries, want 2", id, delivers)
		}
	}
	requireCleanVS(t, g, true)
	requireCleanGroup(t, g, true)
}

func TestGroupVSBlocksNonPrimary(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 5, Seed: 5, EnableVS: true})
	ids := g.IDs()
	g.Partition(300*time.Millisecond, ids[:3], ids[3:])
	// Traffic in both components.
	g.Send(700*time.Millisecond, ids[0], []byte("maj"), Safe)
	g.Send(700*time.Millisecond, ids[3], []byte("min"), Safe)
	g.Run(1500 * time.Millisecond)

	// EVS delivers in both components...
	if ds := g.Deliveries(ids[4]); len(ds) == 0 {
		t.Fatal("EVS should deliver in the minority component")
	}
	// ...but the VS layer blocks the minority.
	for _, id := range ids[3:] {
		for _, e := range g.VSEvents(id) {
			if e.Deliver != nil && string(e.Deliver.Payload) == "min" {
				t.Fatalf("%s: VS layer delivered in a non-primary component", id)
			}
		}
	}
	// The majority's VS layer delivers.
	found := false
	for _, e := range g.VSEvents(ids[0]) {
		if e.Deliver != nil && string(e.Deliver.Payload) == "maj" {
			found = true
		}
	}
	if !found {
		t.Fatal("majority VS layer should deliver")
	}
	requireCleanVS(t, g, true)
	requireCleanGroup(t, g, true)
}

func TestGroupVSMergeSplitsViews(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 4, Seed: 6, EnableVS: true})
	ids := g.IDs()
	g.Partition(300*time.Millisecond, ids[:3], ids[3:])
	g.Merge(600 * time.Millisecond)
	g.Run(1500 * time.Millisecond)

	// On the merge back to 4 members, the incumbent p1 must see the
	// re-merge of p4 as (at least one) single-process view extension.
	var memberships []string
	for _, e := range g.VSEvents(ids[0]) {
		if e.ViewChange != nil {
			memberships = append(memberships, e.ViewChange.Members.String())
		}
	}
	last := memberships[len(memberships)-1]
	if last != "{p01,p02,p03,p04}" {
		t.Fatalf("final view %s, want all four (views: %v)", last, memberships)
	}
	requireCleanVS(t, g, true)
	requireCleanGroup(t, g, true)
}

func TestGroupCrashRecoverWithVS(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 3, Seed: 7, EnableVS: true})
	ids := g.IDs()
	g.Send(300*time.Millisecond, ids[0], []byte("a"), Safe)
	g.Crash(400*time.Millisecond, ids[2])
	g.Send(600*time.Millisecond, ids[0], []byte("b"), Safe)
	g.Recover(800*time.Millisecond, ids[2])
	g.Send(1300*time.Millisecond, ids[1], []byte("c"), Safe)
	g.Run(2 * time.Second)

	// The recovered process rejoins the primary and sees "c".
	found := false
	for _, e := range g.VSEvents(ids[2]) {
		if e.Deliver != nil && string(e.Deliver.Payload) == "c" {
			found = true
		}
	}
	if !found {
		t.Fatalf("recovered process's VS layer missed post-recovery traffic")
	}
	requireCleanVS(t, g, true)
	requireCleanGroup(t, g, true)
}

func TestGroupDeterminism(t *testing.T) {
	run := func() string {
		g := NewGroup(Options{NumProcesses: 4, Seed: 99, EnableVS: true})
		ids := g.IDs()
		for i := 0; i < 8; i++ {
			g.Send(time.Duration(200+30*i)*time.Millisecond, ids[i%4], []byte(fmt.Sprintf("m%d", i)), Safe)
		}
		g.Partition(350*time.Millisecond, ids[:2], ids[2:])
		g.Merge(700 * time.Millisecond)
		g.Run(1500 * time.Millisecond)
		out := ""
		for _, e := range g.History() {
			out += e.String() + "\n"
		}
		return out
	}
	if run() != run() {
		t.Fatal("group executions must replay deterministically")
	}
}

func TestGroupOperationalAndMode(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 3, Seed: 8})
	g.Run(500 * time.Millisecond)
	ops := g.Operational()
	if len(ops) != 1 {
		t.Fatalf("operational %v, want one configuration", ops)
	}
	for _, id := range g.IDs() {
		if g.Mode(id) != "operational" {
			t.Fatalf("%s mode %s", id, g.Mode(id))
		}
	}
	if g.NetStats().Broadcasts == 0 {
		t.Fatal("expected network traffic")
	}
	if rec := g.StableRecord(g.IDs()[0]); rec.LastRegular.ID.IsZero() {
		t.Fatal("stable record should hold the installed configuration")
	}
}

// Package evs is a Go reproduction of "Extended Virtual Synchrony" (Moser,
// Amir, Melliar-Smith, Agarwal; ICDCS 1994): a group communication
// transport for multicast and broadcast communication that keeps the
// delivery of messages and the delivery of configuration changes in a
// consistent relationship across ALL processes of a distributed system —
// including processes in non-primary components of a partitioned network
// and processes that fail and recover with stable storage intact.
//
// The package exposes three layers:
//
//   - The extended virtual synchrony service itself: totally ordered
//     (agreed) and all-stable (safe) delivery within regular and
//     transitional configurations, over a Totem-style token ring,
//     membership consensus and the EVS recovery algorithm.
//   - The primary component algorithm of Section 5: each regular
//     configuration is asynchronously announced primary or non-primary,
//     with the Section 2.2 Uniqueness and Continuity guarantees.
//   - The virtual synchrony filter of Section 5 (Rules 1-4): a process
//     group abstraction in Birman's model, in which only the primary
//     component makes progress.
//
// A Group runs a complete cluster on a deterministic discrete-event
// simulation of a broadcast LAN: partitions, merges, crashes and
// recoveries are scheduled at virtual times and every execution replays
// exactly from its seed. The specification checker (Check, CheckVS)
// verifies executions against the paper's formal model.
package evs

import (
	"time"

	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/vsfilter"
)

// Re-exported vocabulary. These aliases make the public API self-contained
// while the internal packages share the same types.
type (
	// ProcessID identifies a process; recovered processes keep theirs.
	ProcessID = model.ProcessID
	// MessageID identifies a message system-wide.
	MessageID = model.MessageID
	// Service is the delivery service level.
	Service = model.Service
	// ConfigID identifies a regular or transitional configuration.
	ConfigID = model.ConfigID
	// Configuration is a configuration with its membership.
	Configuration = model.Configuration
	// ProcessSet is a sorted set of process identifiers.
	ProcessSet = model.ProcessSet
	// Event is a formal-model trace event.
	Event = model.Event
	// Violation is a specification breach found by the checker.
	Violation = spec.Violation
	// View is a virtual synchrony view (VS layer).
	View = vsfilter.View
	// ViewID identifies a virtual synchrony view.
	ViewID = vsfilter.ViewID
	// VSViolation is a virtual synchrony model breach.
	VSViolation = vsfilter.Violation
)

// Service levels.
const (
	// Agreed requests totally ordered delivery within each component.
	Agreed = model.Agreed
	// Safe requests all-stable totally ordered delivery: if any process
	// in a component delivers the message, every process in that
	// component has received it and will deliver it unless it fails.
	Safe = model.Safe
)

// NewProcessSet builds a process set.
func NewProcessSet(ids ...ProcessID) ProcessSet { return model.NewProcessSet(ids...) }

// Delivery is a message delivered to the application by the EVS layer.
type Delivery struct {
	// Msg identifies the message; Msg.Sender is the originator.
	Msg MessageID
	// Payload is the application payload.
	Payload []byte
	// Service is the service level the sender requested.
	Service Service
	// Config is the configuration — regular or transitional — in which
	// the message was delivered, with its membership.
	Config Configuration
	// Time is the virtual time of the delivery.
	Time time.Duration
}

// ConfigEvent is a configuration change delivered to the application.
type ConfigEvent struct {
	// Config is the configuration being initiated.
	Config Configuration
	// Time is the virtual time of the installation.
	Time time.Duration
}

// PrimaryEvent reports the primary component algorithm's verdict for a
// regular configuration.
type PrimaryEvent struct {
	Config  Configuration
	Primary bool
	// Prev is the previous primary component the verdict was computed
	// against (zero for the first).
	Prev Configuration
	Time time.Duration
}

// VSEvent is an output of the virtual synchrony filter at one process:
// either a view change or a delivery within a view.
type VSEvent struct {
	// ViewChange is set for view events.
	ViewChange *View
	// Deliver is set for deliveries.
	Deliver *vsfilter.Deliver
	Time    time.Duration
}

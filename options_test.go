package evs

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/daemon"
	"repro/internal/node"
)

// fastNetConfig scales the deployment timing profile down for loopback
// tests (same profile the daemon package's own tests use).
func fastNetConfig() node.Config {
	cfg := daemon.DefaultNetConfig()
	cfg.TokenLoss = 150 * time.Millisecond
	cfg.TokenRetrans = 25 * time.Millisecond
	cfg.JoinRetry = 40 * time.Millisecond
	cfg.CommitTimeout = 100 * time.Millisecond
	cfg.RecoveryRetry = 30 * time.Millisecond
	cfg.RecoveryTimeout = 500 * time.Millisecond
	return cfg
}

func TestNewDefaultsToSim(t *testing.T) {
	c, err := New(WithNumProcesses(4), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g, ok := c.(*Group)
	if !ok {
		t.Fatalf("New() = %T, want *Group", c)
	}
	if len(g.IDs()) != 4 {
		t.Fatalf("IDs = %v", g.IDs())
	}
	// The seed reached the simulator: a short run is deterministic.
	g.Send(100*time.Millisecond, g.IDs()[0], []byte("x"), Safe)
	g.Run(time.Second)
	if len(g.Deliveries(g.IDs()[0])) == 0 {
		t.Fatal("no deliveries in sim runtime")
	}
}

func TestNewSimOptionsPassThrough(t *testing.T) {
	c, err := New(WithSimOptions(Options{NumProcesses: 2, Seed: 9, EnableVS: true}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, ok := c.(*Group); !ok {
		t.Fatalf("New() = %T, want *Group", c)
	}
	if n := len(c.IDs()); n != 2 {
		t.Fatalf("got %d processes, want 2", n)
	}
}

func TestNewExplicitProcesses(t *testing.T) {
	c, err := New(WithProcesses("alpha", "beta"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ids := c.IDs()
	if len(ids) != 2 || ids[0] != "alpha" || ids[1] != "beta" {
		t.Fatalf("IDs = %v", ids)
	}
	// Named processes are sim-only; the socket runtimes reject them.
	if _, err := New(WithProcesses("alpha"), WithRuntime(RuntimeUDP)); err == nil {
		t.Fatal("UDP runtime accepted explicit process names")
	}
	if _, err := New(WithProcesses("alpha"), WithRuntime(RuntimeLive)); err == nil {
		t.Fatal("live runtime accepted explicit process names")
	}
}

func TestNewLiveRuntime(t *testing.T) {
	c, err := New(WithRuntime(RuntimeLive), WithNumProcesses(3))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g, ok := c.(*LiveGroup)
	if !ok {
		t.Fatalf("New() = %T, want *LiveGroup", c)
	}
	if !g.WaitOperational(10 * time.Second) {
		t.Fatal("live group never formed")
	}
	if err := c.Submit(g.IDs()[0], []byte("hi"), Agreed); err != nil {
		t.Fatal(err)
	}
	if !g.WaitDeliveries(g.IDs()[1], 1, 10*time.Second) {
		t.Fatal("live delivery never arrived")
	}
}

// TestNewUDPRuntime drives the real-socket runtime through the uniform
// constructor: ring forms over loopback UDP, traffic totally orders, a
// kill shrinks the membership everywhere, and the recorded trace passes
// the specification checker.
func TestNewUDPRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second socket ring test")
	}
	c, err := New(WithRuntime(RuntimeUDP), WithNumProcesses(4),
		WithNodeConfig(fastNetConfig()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g, ok := c.(*NetGroup)
	if !ok {
		t.Fatalf("New() = %T, want *NetGroup", c)
	}
	ids := g.IDs()
	if !g.WaitOperational(20 * time.Second) {
		t.Fatalf("ring never formed; p01 status %+v", g.ProcStatus(ids[0]))
	}

	for i, id := range ids {
		if err := g.Submit(id, []byte(fmt.Sprintf("m%d", i)), Agreed); err != nil {
			t.Fatalf("%s submit: %v", id, err)
		}
	}
	for _, id := range ids {
		if !g.WaitDeliveries(id, 4, 20*time.Second) {
			t.Fatalf("%s delivered %d of 4", id, len(g.Deliveries(id)))
		}
	}
	// Identical total order everywhere.
	ref := g.Deliveries(ids[0])
	for _, id := range ids[1:] {
		ds := g.Deliveries(id)
		for i := range ref {
			if ds[i].Msg != ref[i].Msg {
				t.Fatalf("%s disagrees at %d: %v vs %v", id, i, ds[i].Msg, ref[i].Msg)
			}
		}
	}

	// Kill p04; the survivors deliver a 3-member configuration.
	if err := g.Kill(ids[3]); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		done := 0
		for _, id := range ids[:3] {
			for _, ce := range g.ConfigChanges(id) {
				if ce.Config.ID.IsRegular() && ce.Config.Members.Size() == 3 {
					done++
					break
				}
			}
		}
		if done == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("survivors never installed the 3-member ring; %d of 3 did", done)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if vs := g.Check(false); len(vs) > 0 {
		t.Fatalf("spec violations: %v", vs)
	}
	if len(g.History()) == 0 {
		t.Fatal("empty history")
	}
	if g.Metrics().Total.Counters["wire_packets_out_total"] == 0 {
		t.Fatal("no wire packets counted — traffic did not cross the codec path")
	}
}

func TestNewTCPRuntime(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second socket ring test")
	}
	c, err := New(WithRuntime(RuntimeTCP), WithNumProcesses(3),
		WithNodeConfig(fastNetConfig()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g := c.(*NetGroup)
	if !g.WaitOperational(20 * time.Second) {
		t.Fatal("TCP ring never formed")
	}
	if err := g.Submit(g.IDs()[0], []byte("over tcp"), Safe); err != nil {
		t.Fatal(err)
	}
	for _, id := range g.IDs() {
		if !g.WaitDeliveries(id, 1, 20*time.Second) {
			t.Fatalf("%s never delivered", id)
		}
	}
	if vs := g.Check(false); len(vs) > 0 {
		t.Fatalf("spec violations: %v", vs)
	}
}

func TestNewRejectsUnknownRuntime(t *testing.T) {
	if _, err := New(WithRuntime(Runtime(99))); err == nil {
		t.Fatal("unknown runtime accepted")
	}
}

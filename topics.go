package evs

import (
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/groups"
	"repro/internal/obs"
)

// Re-exported group-layer vocabulary.
type (
	// GroupView is a named group's membership view.
	GroupView = groups.ViewChange
	// GroupDelivery is a group-addressed message delivery.
	GroupDelivery = groups.Deliver
	// GroupEvent is the union of group-layer events.
	GroupEvent = groups.Event
	// GroupID is a dense interned group identifier, assigned
	// identically at every process from the safe total order and valid
	// within one configuration epoch.
	GroupID = groups.GroupID
	// ClientID identifies a lightweight client endpoint multiplexed on
	// a host process (0 is reserved for the process itself).
	ClientID = groups.ClientID
	// ClientOp is one client subscription change inside a batch.
	ClientOp = groups.ClientOp
)

// TopicsOptions configure the group layer.
type TopicsOptions struct {
	// DiscardHistory mirrors Options.DiscardHistory for the group
	// layer: no event history, delivery indexes, or view logs are
	// retained, so the 100k-client bench runs in O(1) memory per
	// message. Counts (DeliveryCount, ClientDeliveries, Filtered)
	// and live views (View) remain available.
	DiscardHistory bool
	// RetainClientQueues keeps a per-client queue of deliveries
	// (ClientQueue). Off by default; high-volume rigs count instead.
	RetainClientQueues bool
}

// Topics multiplexes named process groups over a Group's EVS transport —
// the process group paradigm of the paper's introduction: processes join
// and leave named groups, messages are addressed to groups, and every
// member of a configuration derives identical group membership views from
// the safe total order.
//
// Beyond process-level membership, Topics multiplexes lightweight client
// endpoints, Spread-style: many clients live on one ring member, their
// join/leave/send are ordered group events (batchable), and each host
// fans deliveries out to its local subscribed clients — which is how a
// 100k-client scenario runs on a 16-process ring.
//
// Create it before running the simulation; it registers itself as a
// delivery observer on the Group.
type Topics struct {
	g     *Group
	procs map[ProcessID]*topicProc
	opts  TopicsOptions
	// encodeErrors counts group-layer payloads that failed to serialise
	// and were dropped instead of submitted — the group-layer analogue
	// of Stats.PrimaryEncodeErrors. Atomic: LiveGroup-style runtimes
	// submit from multiple goroutines, and reads may race the run.
	encodeErrors atomic.Uint64
}

// topicProc is one process's slice of the group layer: its multiplexer,
// its metric scope, and — unless history is discarded — its event
// stream plus per-group indexes so Deliveries and Views answer without
// scanning the full history.
type topicProc struct {
	t     *Topics
	id    ProcessID
	mux   *groups.Mux
	met   *obs.Metrics
	event []GroupEvent
	deliv map[string][]GroupDelivery
	views map[string][]GroupView
	// delivered counts member data deliveries even when history is
	// discarded.
	delivered uint64
}

// OnGroupData implements groups.Sink: the per-delivery hot path.
func (p *topicProc) OnGroupData(d groups.Deliver) {
	p.delivered++
	if p.t.opts.DiscardHistory {
		return
	}
	p.event = append(p.event, d)
	p.deliv[d.Group] = append(p.deliv[d.Group], d)
}

// record folds control events into the history and the view index.
func (p *topicProc) record(evs []GroupEvent) {
	if len(evs) == 0 || p.t.opts.DiscardHistory {
		return
	}
	p.event = append(p.event, evs...)
	for _, e := range evs {
		if v, ok := e.(GroupView); ok {
			p.views[v.Group] = append(p.views[v.Group], v)
		}
	}
}

// ErrStarted reports an attempt to attach a layer to a simulation that has
// already begun executing events.
var ErrStarted = errors.New("simulation has already started")

// NewTopics attaches a group layer to g with default options. It must be
// called before the simulation runs: the layer derives group membership
// from the complete safe total order, so attaching it to a simulation
// that has already executed events would silently miss the prefix — that
// is an error.
func NewTopics(g *Group) (*Topics, error) {
	return NewTopicsWith(g, TopicsOptions{})
}

// NewTopicsWith is NewTopics with explicit options.
func NewTopicsWith(g *Group, opts TopicsOptions) (*Topics, error) {
	if g.started() {
		return nil, ErrStarted
	}
	t := &Topics{
		g:     g,
		procs: make(map[ProcessID]*topicProc, len(g.ids)),
		opts:  opts,
	}
	for _, id := range g.IDs() {
		p := &topicProc{
			t:     t,
			id:    id,
			mux:   groups.New(id),
			met:   g.procMetrics(id),
			deliv: make(map[string][]GroupDelivery),
			views: make(map[string][]GroupView),
		}
		p.mux.SetSink(p)
		p.mux.SetMetrics(p.met)
		p.mux.RetainQueues(opts.RetainClientQueues)
		t.procs[id] = p
	}
	g.AddObserver(topicsObserver{t})
	return t, nil
}

// topicsObserver adapts Topics to the Observer interface without exposing
// the callbacks on Topics' public API.
type topicsObserver struct{ t *Topics }

func (o topicsObserver) OnDelivery(id ProcessID, d Delivery) {
	p := o.t.procs[id]
	p.record(p.mux.OnDeliver(d.Msg.Sender, d.Payload))
}

func (o topicsObserver) OnConfigChange(id ProcessID, c ConfigEvent) {
	t := o.t
	p := t.procs[id]
	announce, evs, err := p.mux.OnConfig(c.Config)
	p.record(evs)
	if err != nil {
		t.countEncodeError(p)
		return
	}
	if announce != nil {
		_ = t.g.submit(id, announce, Safe)
	}
}

// countEncodeError counts a dropped payload in both the layer total and
// the process's metric scope.
func (t *Topics) countEncodeError(p *topicProc) {
	t.encodeErrors.Add(1)
	p.met.Inc(obs.CGroupsEncodeErrors)
}

// submitEncoded submits a group-layer payload unless encoding failed, in
// which case the message is counted as dropped.
func (t *Topics) submitEncoded(p *topicProc, payload []byte, err error) {
	if err != nil {
		t.countEncodeError(p)
		return
	}
	if payload != nil {
		_ = t.g.submit(p.id, payload, Safe)
	}
}

// Join schedules a group subscription at virtual time at.
func (t *Topics) Join(at time.Duration, id ProcessID, group string) {
	p := t.procs[id]
	t.g.At(at, func() {
		payload, err := p.mux.Join(group)
		t.submitEncoded(p, payload, err)
	})
}

// Leave schedules a group unsubscription at virtual time at.
func (t *Topics) Leave(at time.Duration, id ProcessID, group string) {
	p := t.procs[id]
	t.g.At(at, func() {
		payload, err := p.mux.Leave(group)
		t.submitEncoded(p, payload, err)
	})
}

// Send schedules a group-addressed message at virtual time at.
func (t *Topics) Send(at time.Duration, id ProcessID, group string, data []byte) {
	p := t.procs[id]
	t.g.At(at, func() {
		payload, err := p.mux.Send(group, data)
		t.submitEncoded(p, payload, err)
	})
}

// ClientJoin schedules a client endpoint's group subscription. The join
// rides the total order like any other group event; duplicates are
// deduplicated at the source and submit nothing.
func (t *Topics) ClientJoin(at time.Duration, id ProcessID, client ClientID, group string) {
	p := t.procs[id]
	t.g.At(at, func() {
		payload, err := p.mux.ClientJoin(client, group)
		t.submitEncoded(p, payload, err)
	})
}

// ClientLeave schedules a client endpoint's unsubscription.
func (t *Topics) ClientLeave(at time.Duration, id ProcessID, client ClientID, group string) {
	p := t.procs[id]
	t.g.At(at, func() {
		payload, err := p.mux.ClientLeave(client, group)
		t.submitEncoded(p, payload, err)
	})
}

// ClientSend schedules a data message from a client endpoint.
func (t *Topics) ClientSend(at time.Duration, id ProcessID, client ClientID, group string, data []byte) {
	p := t.procs[id]
	t.g.At(at, func() {
		payload, err := p.mux.ClientSend(client, group, data)
		t.submitEncoded(p, payload, err)
	})
}

// ClientBatch schedules a batch of client subscription ops as one safe
// message — the daemon-style aggregation that subscribes hundreds of
// clients per ordered event.
func (t *Topics) ClientBatch(at time.Duration, id ProcessID, ops []ClientOp) {
	p := t.procs[id]
	t.g.At(at, func() {
		payload, _, err := p.mux.ClientOpsPayload(ops)
		t.submitEncoded(p, payload, err)
	})
}

// SubmitClientSend submits a client data message immediately (from an At
// callback or between Run calls) to an already-interned group: the
// bench hot path — arena-carved envelope, no name hashing, backpressure
// surfaced to the caller.
func (t *Topics) SubmitClientSend(id ProcessID, client ClientID, gid GroupID, data []byte) error {
	p := t.procs[id]
	return t.g.submit(id, p.mux.SendTo(client, gid, data), Safe)
}

// Resolve returns a group's interned ID at a process in the current
// epoch (false until the first name-carrying message for it delivers).
func (t *Topics) Resolve(id ProcessID, group string) (GroupID, bool) {
	return t.procs[id].mux.Resolve(group)
}

// EncodeErrors reports how many group-layer payloads failed to serialise
// and were dropped. Safe to call concurrently with the run.
func (t *Topics) EncodeErrors() uint64 { return t.encodeErrors.Load() }

// Events returns the group-layer events observed at a process, in order
// (nil when DiscardHistory is set).
func (t *Topics) Events(id ProcessID) []GroupEvent { return t.procs[id].event }

// Deliveries returns the messages a process received in one group,
// answered from a per-group index rather than a scan of the full event
// history (nil when DiscardHistory is set).
func (t *Topics) Deliveries(id ProcessID, group string) []GroupDelivery {
	return t.procs[id].deliv[group]
}

// Views returns the membership views a process observed for one group,
// from the per-group index likewise.
func (t *Topics) Views(id ProcessID, group string) []GroupView {
	return t.procs[id].views[group]
}

// View returns the current view of a group at a process (available in
// every mode).
func (t *Topics) View(id ProcessID, group string) GroupView {
	return t.procs[id].mux.View(group)
}

// DeliveryCount returns member data deliveries at a process (maintained
// in every mode).
func (t *Topics) DeliveryCount(id ProcessID) uint64 { return t.procs[id].delivered }

// ClientDeliveryCount returns total fan-out deliveries into a process's
// client endpoints.
func (t *Topics) ClientDeliveryCount(id ProcessID) uint64 {
	return t.procs[id].mux.ClientDelivered()
}

// ClientDeliveries returns one client endpoint's delivery count.
func (t *Topics) ClientDeliveries(id ProcessID, client ClientID) uint64 {
	return t.procs[id].mux.ClientDeliveredFor(client)
}

// ClientQueue returns a client's retained delivery queue (nil unless
// TopicsOptions.RetainClientQueues is set).
func (t *Topics) ClientQueue(id ProcessID, client ClientID) []GroupDelivery {
	return t.procs[id].mux.ClientQueue(client)
}

// Filtered returns how many group data messages a process dropped on the
// header peek without decoding (also surfaced as groups_filtered_total
// in the process's metric scope).
func (t *Topics) Filtered(id ProcessID) uint64 { return t.procs[id].mux.Filtered() }

// SymbolFingerprint returns the hash of a process's interned symbol
// table: equal across all members of a configuration once the same
// prefix of the total order has delivered.
func (t *Topics) SymbolFingerprint(id ProcessID) uint64 {
	return t.procs[id].mux.Symbols().Fingerprint()
}

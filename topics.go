package evs

import (
	"errors"
	"time"

	"repro/internal/groups"
)

// Re-exported group-layer vocabulary.
type (
	// GroupView is a named group's membership view.
	GroupView = groups.ViewChange
	// GroupDelivery is a group-addressed message delivery.
	GroupDelivery = groups.Deliver
	// GroupEvent is the union of group-layer events.
	GroupEvent = groups.Event
)

// Topics multiplexes named process groups over a Group's EVS transport —
// the process group paradigm of the paper's introduction: processes join
// and leave named groups, messages are addressed to groups, and every
// member of a configuration derives identical group membership views from
// the safe total order.
//
// Create it before running the simulation; it registers itself as a
// delivery observer on the Group.
type Topics struct {
	g      *Group
	mux    map[ProcessID]*groups.Mux
	events map[ProcessID][]GroupEvent
	// encodeErrors counts group-layer payloads that failed to serialise
	// and were dropped instead of submitted — the group-layer analogue of
	// Stats.PrimaryEncodeErrors. Structurally unreachable with the
	// current Envelope (plain strings and bytes), but counted rather than
	// panicked so a future envelope change cannot crash the simulation.
	encodeErrors uint64
}

// ErrStarted reports an attempt to attach a layer to a simulation that has
// already begun executing events.
var ErrStarted = errors.New("simulation has already started")

// NewTopics attaches a group layer to g. It must be called before the
// simulation runs: the layer derives group membership from the complete
// safe total order, so attaching it to a simulation that has already
// executed events would silently miss the prefix — that is an error.
func NewTopics(g *Group) (*Topics, error) {
	if g.started() {
		return nil, ErrStarted
	}
	t := &Topics{
		g:      g,
		mux:    make(map[ProcessID]*groups.Mux, len(g.ids)),
		events: make(map[ProcessID][]GroupEvent),
	}
	for _, id := range g.IDs() {
		t.mux[id] = groups.New(id)
	}
	g.AddObserver(topicsObserver{t})
	return t, nil
}

// topicsObserver adapts Topics to the Observer interface without exposing
// the callbacks on Topics' public API.
type topicsObserver struct{ t *Topics }

func (o topicsObserver) OnDelivery(id ProcessID, d Delivery) {
	t := o.t
	t.events[id] = append(t.events[id], t.mux[id].OnDeliver(d.Msg.Sender, d.Payload)...)
}

func (o topicsObserver) OnConfigChange(id ProcessID, c ConfigEvent) {
	t := o.t
	announce, evs, err := t.mux[id].OnConfig(c.Config)
	t.events[id] = append(t.events[id], evs...)
	if err != nil {
		t.encodeErrors++
		return
	}
	if announce != nil {
		_ = t.g.submit(id, announce, Safe)
	}
}

// submitEncoded submits a group-layer payload unless encoding failed, in
// which case the message is counted as dropped.
func (t *Topics) submitEncoded(id ProcessID, payload []byte, err error) {
	if err != nil {
		t.encodeErrors++
		return
	}
	_ = t.g.submit(id, payload, Safe)
}

// Join schedules a group subscription at virtual time at.
func (t *Topics) Join(at time.Duration, id ProcessID, group string) {
	t.g.At(at, func() {
		payload, err := t.mux[id].Join(group)
		t.submitEncoded(id, payload, err)
	})
}

// Leave schedules a group unsubscription at virtual time at.
func (t *Topics) Leave(at time.Duration, id ProcessID, group string) {
	t.g.At(at, func() {
		payload, err := t.mux[id].Leave(group)
		t.submitEncoded(id, payload, err)
	})
}

// Send schedules a group-addressed message at virtual time at.
func (t *Topics) Send(at time.Duration, id ProcessID, group string, data []byte) {
	t.g.At(at, func() {
		payload, err := t.mux[id].Send(group, data)
		t.submitEncoded(id, payload, err)
	})
}

// EncodeErrors reports how many group-layer payloads failed to serialise
// and were dropped.
func (t *Topics) EncodeErrors() uint64 { return t.encodeErrors }

// Events returns the group-layer events observed at a process, in order.
func (t *Topics) Events(id ProcessID) []GroupEvent { return t.events[id] }

// Deliveries returns the messages a process received in one group.
func (t *Topics) Deliveries(id ProcessID, group string) []GroupDelivery {
	var out []GroupDelivery
	for _, e := range t.events[id] {
		if d, ok := e.(GroupDelivery); ok && d.Group == group {
			out = append(out, d)
		}
	}
	return out
}

// Views returns the membership views a process observed for one group.
func (t *Topics) Views(id ProcessID, group string) []GroupView {
	var out []GroupView
	for _, e := range t.events[id] {
		if v, ok := e.(GroupView); ok && v.Group == group {
			out = append(out, v)
		}
	}
	return out
}

// View returns the current view of a group at a process.
func (t *Topics) View(id ProcessID, group string) GroupView {
	return t.mux[id].View(group)
}

package evs

import (
	"fmt"
	"testing"
	"time"
)

// The N1 experiment (EXPERIMENTS.md): end-to-end ordered-delivery
// throughput of the same 4-process protocol stack on its three live
// runtimes — the in-process channel hub, the UDP transport and the TCP
// mesh, both on loopback. One process submits, the benchmark waits
// until every process has delivered everything, so the measured rate is
// the sequenced-and-delivered-everywhere rate, not the submission rate.
//
//	go test -run xxx -bench RuntimeThroughput -benchtime 2000x .

func benchThroughput(b *testing.B, c Cluster) {
	type waiter interface {
		WaitOperational(time.Duration) bool
		WaitDeliveries(ProcessID, int, time.Duration) bool
	}
	w := c.(waiter)
	if !w.WaitOperational(10 * time.Second) {
		b.Fatal("cluster did not form")
	}
	ids := c.IDs()
	sender := ids[0]
	payload := []byte("0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for {
			if err := c.Submit(sender, payload, Agreed); err == nil {
				break
			}
			// Backlogged flow control: yield and retry.
			time.Sleep(200 * time.Microsecond)
		}
	}
	for _, id := range ids {
		if !w.WaitDeliveries(id, b.N, 120*time.Second) {
			b.Fatalf("%s delivered %d of %d", id, len(c.Deliveries(id)), b.N)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "msgs/s")
}

func BenchmarkRuntimeThroughput(b *testing.B) {
	for _, rt := range []Runtime{RuntimeLive, RuntimeUDP, RuntimeTCP} {
		b.Run(fmt.Sprintf("%v", rt), func(b *testing.B) {
			c, err := New(WithRuntime(rt), WithNumProcesses(4))
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			benchThroughput(b, c)
		})
	}
}

// Benchmarks regenerating the paper's figures and the protocol
// characterisation series (see DESIGN.md §4 and EXPERIMENTS.md). Each
// benchmark runs the corresponding experiment from internal/experiments and
// reports domain metrics via b.ReportMetric alongside the usual wall-clock
// cost of simulating it.
package evs_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/experiments"
)

// BenchmarkFig1to5SpecChecker runs the Figures 1-5 conformance suite: a
// churny protocol execution checked against every specification plus one
// deliberately violating trace per clause. The reported metric is the
// fraction of conformance rows that behave as required (must be 1.0).
func BenchmarkFig1to5SpecChecker(b *testing.B) {
	pass, total := 0, 0
	for i := 0; i < b.N; i++ {
		rows := experiments.Figures1to5(int64(i + 1))
		for _, r := range rows {
			total++
			if r.Pass() {
				pass++
			}
		}
	}
	b.ReportMetric(float64(pass)/float64(total), "conformance")
}

// BenchmarkFig6Scenario reproduces the paper's worked example end to end.
func BenchmarkFig6Scenario(b *testing.B) {
	ok := 0
	for i := 0; i < b.N; i++ {
		res := experiments.Figure6(int64(i + 1))
		if res.QRTransitional && res.PIsolated && len(res.Violations) == 0 {
			ok++
		}
	}
	b.ReportMetric(float64(ok)/float64(b.N), "reproduced")
}

// BenchmarkFig7VSFilter runs the layered virtual-synchrony stack through a
// partition and validates Birman's model conditions.
func BenchmarkFig7VSFilter(b *testing.B) {
	ok := 0
	for i := 0; i < b.N; i++ {
		res := experiments.Figure7(int64(i + 1))
		if res.VSDeliveriesMinority == 0 && res.EVSDeliveriesMinority > 0 &&
			len(res.VSViolations) == 0 && len(res.EVSViolations) == 0 {
			ok++
		}
	}
	b.ReportMetric(float64(ok)/float64(b.N), "reproduced")
}

// BenchmarkThroughputVsGroupSize measures safe-service ordering throughput
// (messages fully delivered per virtual second) per group size.
func BenchmarkThroughputVsGroupSize(b *testing.B) {
	for _, size := range []int{2, 3, 5, 8, 12} {
		size := size
		b.Run(fmt.Sprintf("procs=%d", size), func(b *testing.B) {
			var msgsPerSec float64
			for i := 0; i < b.N; i++ {
				row := experiments.Throughput(size, int64(i+1), 500*time.Millisecond)
				msgsPerSec += row.MsgsPerSec
			}
			b.ReportMetric(msgsPerSec/float64(b.N), "msgs/vsec")
		})
	}
}

// BenchmarkSafeVsAgreedLatency measures unloaded submit-to-delivery latency
// for both service levels; the reported metric is the safe/agreed ratio
// (safe costs roughly one extra token rotation).
func BenchmarkSafeVsAgreedLatency(b *testing.B) {
	for _, size := range []int{3, 5, 8} {
		size := size
		b.Run(fmt.Sprintf("procs=%d", size), func(b *testing.B) {
			var ratio, safeMs float64
			for i := 0; i < b.N; i++ {
				row := experiments.Latency(size, int64(i+1), 8)
				ratio += row.SafeOverAgreed
				safeMs += row.SafeMs
			}
			b.ReportMetric(ratio/float64(b.N), "safe/agreed")
			b.ReportMetric(safeMs/float64(b.N), "safe-vms")
		})
	}
}

// BenchmarkRecoveryVsBacklog measures the EVS recovery algorithm's
// reconfiguration latency as a function of the message backlog outstanding
// at partition time.
func BenchmarkRecoveryVsBacklog(b *testing.B) {
	for _, backlog := range []int{0, 100, 400, 1000} {
		backlog := backlog
		b.Run(fmt.Sprintf("backlog=%d", backlog), func(b *testing.B) {
			var ms float64
			n := 0
			for i := 0; i < b.N; i++ {
				row := experiments.Recovery(backlog, int64(i+1))
				if row.RecoveryMs > 0 {
					ms += row.RecoveryMs
					n++
				}
			}
			if n > 0 {
				b.ReportMetric(ms/float64(n), "recovery-vms")
			}
		})
	}
}

// BenchmarkAvailabilityEVSvsVS measures the fraction of live processes able
// to make progress during a partition, per layer. EVS keeps every
// component active; the virtual synchrony filter keeps only the primary
// component.
func BenchmarkAvailabilityEVSvsVS(b *testing.B) {
	for _, split := range []int{4, 3, 2} {
		split := split
		b.Run(fmt.Sprintf("split=%d|%d", split, 5-split), func(b *testing.B) {
			var evsA, vsA float64
			for i := 0; i < b.N; i++ {
				row := experiments.Availability(split, int64(i+1))
				evsA += row.EVSActive
				vsA += row.VSActive
			}
			b.ReportMetric(evsA/float64(b.N), "evs-active")
			b.ReportMetric(vsA/float64(b.N), "vs-active")
		})
	}
}

// BenchmarkPrimaryHistory drives partition/merge storms with the primary
// component algorithm and verifies Uniqueness and Continuity throughout.
func BenchmarkPrimaryHistory(b *testing.B) {
	violations := 0
	primaries := 0
	for i := 0; i < b.N; i++ {
		row := experiments.PrimaryHistory(int64(i + 1))
		violations += row.Violations
		primaries += row.Primaries
	}
	b.ReportMetric(float64(violations), "violations")
	b.ReportMetric(float64(primaries)/float64(b.N), "primaries/run")
}

package evs

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/harness"
	"repro/internal/model"
	"repro/internal/netsim"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/primary"
	"repro/internal/spec"
	"repro/internal/stable"
	"repro/internal/vsfilter"
	"repro/internal/wire"
)

// Envelope tags multiplex the EVS payload between the application and the
// primary-component layer.
const (
	tagApp     byte = 0
	tagPrimary byte = 1
)

// Options configure a Group.
type Options struct {
	// Processes lists the process identifiers. If empty, NumProcesses
	// processes named p01..pNN are created.
	Processes []ProcessID
	// NumProcesses is used when Processes is empty (default 3).
	NumProcesses int
	// Seed drives the deterministic simulation.
	Seed int64
	// DropRate and DupRate configure network loss and duplication.
	DropRate, DupRate float64
	// Codec routes every simulated packet through the wire binary codec
	// (encode at send, decode per receiver) exactly as the real
	// transports do; with the fault rates zero the execution is
	// bit-identical to a run without it. CorruptRate and TruncateRate
	// then flip a bit in, or cut short, individual receivers' encoded
	// frames; rejected frames are counted and dropped, never panicking.
	Codec                     bool
	CorruptRate, TruncateRate float64
	// MinDelay and MaxDelay bound packet latency; zero values select a
	// LAN-like default profile.
	MinDelay, MaxDelay time.Duration
	// EnablePrimary runs the primary component algorithm on every
	// process (required for the virtual synchrony layer).
	EnablePrimary bool
	// EnableVS runs the virtual synchrony filter on every process
	// (implies EnablePrimary).
	EnableVS bool
	// Node overrides protocol timing.
	Node *node.Config
	// DiscardHistory turns the group into a pure measurement rig for
	// saturating benchmarks: neither the formal-model event history nor
	// per-process delivery slices are retained, so memory stays O(1) per
	// message. Deliveries returns nil; use DeliveryCount. History, Check,
	// and the latency experiments need the retained data and must not set
	// this.
	DiscardHistory bool
}

// Group is a deterministic in-memory EVS cluster with optional primary
// component and virtual synchrony layers.
type Group struct {
	cluster *harness.Cluster
	ids     []ProcessID
	opts    Options

	prim    map[ProcessID]*primary.Protocol
	filters map[ProcessID]*vsfilter.Filter

	deliveries    map[ProcessID][]Delivery
	deliveryCount map[ProcessID]uint64
	confs         map[ProcessID][]ConfigEvent
	primaryEvs    map[ProcessID][]PrimaryEvent
	vsEvents      map[ProcessID][]VSEvent
	vsTrace       []vsfilter.TraceEvent
	crashed       map[ProcessID]bool
	stats         GroupStats

	// observers receive application-level events as they happen, in
	// registration order (AddObserver).
	observers []Observer

	// wrapArena amortises the per-submission envelope allocation: tagged
	// payload buffers are carved from chunks instead of allocated one
	// append each. Carved buffers are never reused, so handing them to
	// the node (which retains them until sequenced) is safe.
	wrapArena []byte
}

// NewGroup creates a group; processes boot at virtual time zero.
func NewGroup(opts Options) *Group {
	if opts.EnableVS {
		opts.EnablePrimary = true
	}
	ids := opts.Processes
	if len(ids) == 0 {
		n := opts.NumProcesses
		if n <= 0 {
			n = 3
		}
		for i := 0; i < n; i++ {
			ids = append(ids, ProcessID(fmt.Sprintf("p%02d", i+1)))
		}
	}
	netCfg := netsim.Default(opts.Seed)
	if opts.MinDelay > 0 || opts.MaxDelay > 0 {
		netCfg.MinDelay, netCfg.MaxDelay = opts.MinDelay, opts.MaxDelay
	}
	netCfg.DropRate, netCfg.DupRate = opts.DropRate, opts.DupRate
	netCfg.Codec = opts.Codec
	netCfg.CorruptRate, netCfg.TruncateRate = opts.CorruptRate, opts.TruncateRate

	g := &Group{
		ids:           ids,
		opts:          opts,
		prim:          make(map[ProcessID]*primary.Protocol),
		filters:       make(map[ProcessID]*vsfilter.Filter),
		deliveries:    make(map[ProcessID][]Delivery),
		deliveryCount: make(map[ProcessID]uint64),
		confs:         make(map[ProcessID][]ConfigEvent),
		primaryEvs:    make(map[ProcessID][]PrimaryEvent),
		vsEvents:      make(map[ProcessID][]VSEvent),
		crashed:       make(map[ProcessID]bool),
	}
	g.cluster = harness.New(harness.Options{
		IDs:            ids,
		Seed:           opts.Seed,
		Net:            &netCfg,
		Node:           opts.Node,
		DropHistory:    opts.DiscardHistory,
		DropDeliveries: opts.DiscardHistory,
	})
	universe := model.NewProcessSet(ids...)
	for _, id := range ids {
		if opts.EnablePrimary {
			g.prim[id] = primary.New(id, universe, model.Configuration{}, model.Configuration{})
		}
		if opts.EnableVS {
			g.filters[id] = vsfilter.New(id)
		}
	}
	g.cluster.OnDeliver = g.onDeliver
	g.cluster.OnConfig = g.onConfig
	return g
}

// OnWire registers an observer of every transmitted protocol message (for
// traffic accounting in the benchmark harness). Batched data packets are
// unwrapped: the observer sees one "data" call per carried message, so
// accounting is independent of how the transport packs packets.
func (g *Group) OnWire(fn func(from ProcessID, kind string)) {
	g.cluster.OnWire = func(from model.ProcessID, msg wire.Message) {
		if b, ok := msg.(wire.DataBatch); ok {
			for range b.Msgs {
				fn(from, "data")
			}
			return
		}
		fn(from, msg.Kind())
	}
}

// AddObserver registers an additional application-event observer; every
// registered observer sees every delivery and configuration change, in
// registration order. Register before the simulation runs.
func (g *Group) AddObserver(o Observer) {
	if o != nil {
		g.observers = append(g.observers, o)
	}
}

// started reports whether the simulation has begun executing events.
func (g *Group) started() bool {
	return g.cluster.Sched.Fired() > 0 || g.cluster.Sched.Now() > 0
}

// IDs returns the process identifiers.
func (g *Group) IDs() []ProcessID {
	out := make([]ProcessID, len(g.ids))
	copy(out, g.ids)
	return out
}

// Now returns the current virtual time.
func (g *Group) Now() time.Duration { return g.cluster.Sched.Now() }

// Run advances the simulation to the given absolute virtual time.
func (g *Group) Run(until time.Duration) { g.cluster.Run(until) }

// At schedules fn at an absolute virtual time.
func (g *Group) At(t time.Duration, fn func()) { g.cluster.At(t, fn) }

// Send schedules a message submission at process id at virtual time t.
func (g *Group) Send(t time.Duration, id ProcessID, payload []byte, svc Service) {
	g.At(t, func() { _ = g.submit(id, payload, svc) })
}

// Submit submits an application message at the current virtual time. It is
// the Cluster-interface counterpart of Send, for code that drives the
// simulation itself (typically from an At callback or between Run calls).
func (g *Group) Submit(id ProcessID, payload []byte, svc Service) error {
	return g.submit(id, payload, svc)
}

// submit wraps the payload in the application envelope and submits it.
// Errors are additionally counted in GroupStats: scenario-expected
// rejections (process down, backlog shed) must stay visible even when the
// scheduled-send path has no caller to return them to.
func (g *Group) submit(id ProcessID, payload []byte, svc Service) error {
	if g.crashed[id] {
		g.stats.Rejected++
		return ErrDown
	}
	wrapped := g.wrapApp(payload)
	if err := g.cluster.Node(id).Submit(wrapped, svc); err != nil {
		if errors.Is(err, node.ErrBacklog) {
			g.stats.Backlogged++
		} else {
			g.stats.Rejected++
		}
		return err
	}
	g.stats.Submitted++
	if f := g.filters[id]; f != nil && !f.Blocked() {
		// The VS layer observes the send for the model checker. The
		// message identifier is the one just assigned.
		rec := g.cluster.Store(id).Load()
		g.vsTrace = append(g.vsTrace, vsfilter.TraceEvent{
			Type: vsfilter.EventSend,
			Proc: id,
			Msg:  MessageID{Sender: id, SenderSeq: rec.SenderSeq},
		})
	}
	return nil
}

// wrapApp prefixes the payload with the application envelope tag, carving
// the buffer from the group's chunked arena (one allocation per chunk, not
// per submission).
//
//evs:noalloc
func (g *Group) wrapApp(payload []byte) []byte {
	n := len(payload) + 1
	if len(g.wrapArena) < n {
		grow := 16 << 10
		if grow < n {
			grow = n
		}
		g.wrapArena = make([]byte, grow)
	}
	w := g.wrapArena[:n:n]
	g.wrapArena = g.wrapArena[n:]
	w[0] = tagApp
	copy(w[1:], payload)
	return w
}

// Partition schedules a network partition at virtual time t; processes not
// listed in any group are isolated.
func (g *Group) Partition(t time.Duration, groups ...[]ProcessID) {
	g.cluster.Partition(t, groups...)
}

// Merge schedules a full network merge at virtual time t.
func (g *Group) Merge(t time.Duration) { g.cluster.Merge(t) }

// Crash schedules a process failure at virtual time t; volatile state is
// lost, stable storage survives.
func (g *Group) Crash(t time.Duration, id ProcessID) {
	g.At(t, func() {
		if g.crashed[id] {
			return
		}
		g.crashed[id] = true
		g.cluster.Node(id).Crash()
		g.cluster.Net.SetDown(id, true)
		if g.opts.EnableVS {
			g.vsTrace = append(g.vsTrace, vsfilter.TraceEvent{
				Type: vsfilter.EventStop, Proc: id,
			})
		}
	})
}

// Recover schedules a process recovery at virtual time t: the process
// restarts with its stable storage intact and the same identifier.
func (g *Group) Recover(t time.Duration, id ProcessID) {
	g.At(t, func() {
		if !g.crashed[id] {
			return
		}
		g.crashed[id] = false
		g.cluster.Net.SetDown(id, false)
		// The primary layer reloads its persisted knowledge; the VS
		// filter restarts blocked (a recovered process rejoins the
		// primary component through Rule 4).
		rec := g.cluster.Store(id).Load()
		if g.opts.EnablePrimary {
			g.prim[id] = primary.New(id, model.NewProcessSet(g.ids...), rec.LastPrimary, rec.PrimaryAttempt)
		}
		if g.opts.EnableVS {
			g.filters[id] = vsfilter.New(id)
		}
		g.cluster.Node(id).Recover()
	})
}

// onConfig feeds configuration changes to the upper layers.
func (g *Group) onConfig(id model.ProcessID, cc node.ConfigChange) {
	ce := ConfigEvent{Config: cc.Config, Time: g.Now()}
	g.confs[id] = append(g.confs[id], ce)
	for _, o := range g.observers {
		o.OnConfigChange(id, ce)
	}
	if p := g.prim[id]; p != nil {
		g.applyPrimaryActions(id, p.OnConfig(cc.Config))
	}
	if f := g.filters[id]; f != nil {
		g.applyVSOutputs(id, f.OnConfig(cc.Config))
	}
}

// onDeliver demultiplexes EVS deliveries between the application and the
// primary layer, feeding the application stream to the VS filter.
func (g *Group) onDeliver(id model.ProcessID, d node.Delivery) {
	if len(d.Payload) == 0 {
		return
	}
	tag, body := d.Payload[0], d.Payload[1:]
	switch tag {
	case tagPrimary:
		p := g.prim[id]
		if p == nil {
			return
		}
		m, err := primary.Decode(body)
		if err != nil {
			return
		}
		g.applyPrimaryActions(id, p.OnMessage(m))
	case tagApp:
		g.deliveryCount[id]++
		if g.opts.DiscardHistory && len(g.observers) == 0 && g.filters[id] == nil {
			return
		}
		del := Delivery{
			Msg:     d.Msg,
			Payload: body,
			Service: d.Service,
			Config:  d.Config,
			Time:    g.Now(),
		}
		if !g.opts.DiscardHistory {
			g.deliveries[id] = append(g.deliveries[id], del)
		}
		for _, o := range g.observers {
			o.OnDelivery(id, del)
		}
		if f := g.filters[id]; f != nil {
			g.applyVSOutputs(id, f.OnDeliver(d.Msg, body, d.Service))
		}
	}
}

// applyPrimaryActions executes the primary protocol's requested actions.
func (g *Group) applyPrimaryActions(id model.ProcessID, acts []primary.Action) {
	for _, a := range acts {
		switch act := a.(type) {
		case primary.Broadcast:
			payload, err := primary.Encode(act.Msg)
			if err != nil {
				g.stats.PrimaryEncodeErrors++
				continue
			}
			wrapped := append([]byte{tagPrimary}, payload...)
			// Primary-layer messages ride the safe service. A refusal
			// (the process is down or mid-recovery) is expected under
			// faults; it is counted rather than silently dropped so
			// tests and operators can see lost protocol traffic.
			if err := g.cluster.Node(id).Submit(wrapped, model.Safe); err != nil {
				g.stats.PrimaryRejected++
			}
		case primary.PersistAttempt:
			rec := g.cluster.Store(id).Load()
			rec.PrimaryAttempt = act.Cfg
			g.cluster.Store(id).Save(rec)
		case primary.PersistPrimary:
			rec := g.cluster.Store(id).Load()
			rec.LastPrimary = act.Cfg
			rec.PrimaryAttempt = model.Configuration{}
			g.cluster.Store(id).Save(rec)
		case primary.Decided:
			g.primaryEvs[id] = append(g.primaryEvs[id], PrimaryEvent{
				Config:  act.Cfg,
				Primary: act.Primary,
				Prev:    act.Prev,
				Time:    g.Now(),
			})
			g.markPrimaryTrace(id, act)
			if f := g.filters[id]; f != nil {
				inView := !f.CurrentView().ID.IsZero()
				g.applyVSOutputs(id, f.OnPrimaryDecision(act.Cfg, act.Primary, act.Prev))
				if !act.Primary && inView {
					// Leaving the primary component is failure in
					// Birman's primary-partition model: record the
					// stop so the completeness conditions treat the
					// process's missing deliveries as extendable.
					g.vsTrace = append(g.vsTrace, vsfilter.TraceEvent{
						Type: vsfilter.EventStop, Proc: id,
					})
				}
			}
		}
	}
}

// markPrimaryTrace annotates the process's deliver_conf trace event for the
// decided configuration with the primary verdict, so the specification
// checker can verify Section 2.2.
func (g *Group) markPrimaryTrace(id model.ProcessID, act primary.Decided) {
	if !act.Primary {
		return
	}
	events := g.cluster.History.Events()
	for i := len(events) - 1; i >= 0; i-- {
		e := events[i]
		if e.Type == model.EventDeliverConf && e.Proc == id && e.Config == act.Cfg.ID {
			events[i].Primary = true
			return
		}
	}
}

// applyVSOutputs records the VS filter's outputs.
func (g *Group) applyVSOutputs(id model.ProcessID, outs []vsfilter.Output) {
	for _, o := range outs {
		switch out := o.(type) {
		case vsfilter.ViewChange:
			v := out.View
			g.vsEvents[id] = append(g.vsEvents[id], VSEvent{ViewChange: &v, Time: g.Now()})
			g.vsTrace = append(g.vsTrace, vsfilter.TraceEvent{
				Type: vsfilter.EventView, Proc: id, View: v.ID, Members: v.Members,
			})
		case vsfilter.Deliver:
			d := out
			g.vsEvents[id] = append(g.vsEvents[id], VSEvent{Deliver: &d, Time: g.Now()})
			g.vsTrace = append(g.vsTrace, vsfilter.TraceEvent{
				Type: vsfilter.EventDeliver, Proc: id, View: d.View, Msg: d.Msg,
			})
		}
	}
}

// Deliveries returns the EVS-layer deliveries at a process. Nil when the
// group was built with DiscardHistory; use DeliveryCount there.
func (g *Group) Deliveries(id ProcessID) []Delivery { return g.deliveries[id] }

// DeliveryCount returns the number of application deliveries at a process,
// maintained even when DiscardHistory drops the delivery slices.
func (g *Group) DeliveryCount(id ProcessID) uint64 { return g.deliveryCount[id] }

// PeakPending returns the high-water mark of the scheduler's event queue
// over the whole run — the simulator-side memory footprint a benchmark row
// reports alongside its throughput.
func (g *Group) PeakPending() int { return g.cluster.Sched.PeakPending() }

// ConfigEvents returns the configuration changes delivered at a process.
func (g *Group) ConfigEvents(id ProcessID) []ConfigEvent { return g.confs[id] }

// ConfigChanges returns the configuration changes delivered at a process
// (the Cluster-interface name for ConfigEvents).
func (g *Group) ConfigChanges(id ProcessID) []ConfigEvent { return g.confs[id] }

// Metrics freezes every process's observability scope, plus the "net"
// medium scope, into one cluster snapshot.
func (g *Group) Metrics() ClusterMetrics { return g.cluster.MetricsSnapshot() }

// procMetrics returns one process's live metric scope, so attached
// layers (Topics) can count into the same catalog the transport uses.
func (g *Group) procMetrics(id ProcessID) *obs.Metrics { return g.cluster.Metrics(id) }

// ObsEvents returns the merged protocol trace: every scope's retained
// events in one time-ordered stream (budget trajectory, gather causes,
// recovery steps, configuration installs).
func (g *Group) ObsEvents() []ObsEvent { return g.cluster.ObsEvents() }

// Close implements Cluster. The simulator holds no external resources;
// Close is a no-op so simulation code can be runtime-generic.
func (g *Group) Close() error { return nil }

// PrimaryEvents returns the primary verdicts observed at a process.
func (g *Group) PrimaryEvents(id ProcessID) []PrimaryEvent { return g.primaryEvs[id] }

// VSEvents returns the virtual synchrony events at a process.
func (g *Group) VSEvents(id ProcessID) []VSEvent { return g.vsEvents[id] }

// History returns the formal-model trace of the whole execution.
func (g *Group) History() []Event { return g.cluster.History.Events() }

// Check verifies the execution against the EVS specifications (1-7) and,
// when the primary layer is enabled, the primary component properties.
func (g *Group) Check(settled bool) []Violation {
	checker := spec.NewChecker(g.cluster.History.Events(), spec.Options{Settled: settled})
	out := checker.CheckAll()
	if g.opts.EnablePrimary {
		out = append(out, checker.CheckPrimary()...)
	}
	return out
}

// CheckVS verifies the filtered execution against the virtual synchrony
// model (completeness C1-C3, legality L1-L5).
func (g *Group) CheckVS(settled bool) []VSViolation {
	return vsfilter.Check(g.vsTrace, settled)
}

// Operational returns the regular configurations currently installed by
// live, operational processes.
func (g *Group) Operational() map[ConfigID]ProcessSet {
	return g.cluster.OperationalConfigIDs()
}

// Mode returns the protocol mode of a process ("operational",
// "gathering", "recovering", "down").
func (g *Group) Mode(id ProcessID) string { return g.cluster.Node(id).Mode().String() }

// StableRecord returns a copy of a process's stable storage (for
// diagnostics and tests).
func (g *Group) StableRecord(id ProcessID) stable.Record {
	return g.cluster.Store(id).Load()
}

// NetStats returns network activity counters.
func (g *Group) NetStats() netsim.Stats { return g.cluster.Net.Stats() }

// PendingDepth returns the send backlog at a process: messages submitted
// but not yet sequenced. Submissions beyond the node's MaxPending bound
// are shed (counted in GroupStats.Backlogged).
func (g *Group) PendingDepth(id ProcessID) int {
	return g.cluster.Node(id).PendingDepth()
}

// GroupStats counts group-level activity that would otherwise vanish
// silently: application submissions and primary-layer protocol traffic
// refused or unencodable at the transport boundary.
type GroupStats struct {
	// Submitted and Rejected count application submissions accepted and
	// refused (process down or reconfiguring).
	Submitted, Rejected uint64
	// Backlogged counts application submissions shed because the
	// process's send backlog was full (backpressure).
	Backlogged uint64
	// PrimaryRejected counts primary-layer broadcasts the node refused.
	PrimaryRejected uint64
	// PrimaryEncodeErrors counts primary-layer messages that failed to
	// serialise.
	PrimaryEncodeErrors uint64
}

// Stats returns a copy of the group's activity counters.
func (g *Group) Stats() GroupStats { return g.stats }

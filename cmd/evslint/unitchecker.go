// Vettool mode: the subset of cmd/go's unitchecker protocol evslint
// needs. When go vet runs with -vettool=evslint it invokes the binary
// once per package with the path of a JSON config file (suffix .cfg)
// describing the package's sources and the compiler export data of its
// dependency closure. The tool type-checks the unit, runs the suite,
// writes the (empty — the suite is fact-free) .vetx output cmd/go
// expects, prints diagnostics to stderr and exits non-zero on a
// violation.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/lint"
)

// unitConfig mirrors the fields of cmd/go's vet config evslint consumes.
type unitConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgFile string, stderr io.Writer) int {
	raw, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(stderr, "evslint: %v\n", err)
		return 2
	}
	var cfg unitConfig
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fmt.Fprintf(stderr, "evslint: parsing %s: %v\n", cfgFile, err)
		return 2
	}

	// cmd/go caches the .vetx facts file; it must exist even when the
	// unit is skipped or clean (the suite produces no facts).
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(stderr, "evslint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// cmd/go hands vet the augmented test variant of a package — its
	// sources plus in-package _test.go files, under an import path like
	// "repro/x [repro/x.test]". The suite encodes production-path
	// invariants, so the _test.go files are filtered out (Load does the
	// same in direct mode) but the production sources are still checked;
	// the import path is canonicalised so zone-scoped analyzers see it.
	// External test packages (x_test) and generated test mains (x.test)
	// contain only test code and are skipped whole.
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}
	if strings.HasSuffix(importPath, ".test") || strings.HasSuffix(importPath, "_test") {
		return 0
	}
	var files []string
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		if !filepath.IsAbs(f) {
			f = filepath.Join(cfg.Dir, f)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return 0
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, err := analysis.LoadFiles(importPath, files, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(stderr, "evslint: %v\n", err)
		return 2
	}
	diags, err := analysis.Check([]*analysis.Package{pkg}, lint.Analyzers())
	if err != nil {
		fmt.Fprintf(stderr, "evslint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

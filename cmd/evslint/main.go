// Command evslint runs the repo's analyzer suite (see
// internal/analysis/lint) over Go packages and reports invariant
// violations. It exits 0 on a clean tree, 1 on diagnostics, 2 on
// operational errors.
//
// Direct mode loads packages itself (dependencies resolved from
// compiler export data via `go list -export`, the way go vet resolves
// them — no network, no third-party code):
//
//	go run ./cmd/evslint ./...
//	evslint -list              # print the analyzer registry
//	evslint -allow-audit ./... # also report stale //lint:allow waivers
//
// Vettool mode speaks cmd/go's unitchecker protocol, so the suite also
// runs under the standard vet driver (per-package, build-cached):
//
//	go build -o evslint ./cmd/evslint
//	go vet -vettool=$PWD/evslint ./...
//
// In vettool mode cmd/go invokes the binary once with -V=full (for the
// cache key) and then once per package with a *.cfg JSON file describing
// the package's sources and the export data of its dependencies.
//
// Suppression: //lint:allow <analyzer> <reason> on the offending line or
// the line above. Reasons are mandatory and unknown analyzer names are
// themselves reported; see DESIGN.md §11 for the annotation vocabulary.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	// cmd/go probes `evslint -flags` for the tool's analyzer flags (a
	// JSON array of flag definitions); the suite exposes none.
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	fs := flag.NewFlagSet("evslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		version = fs.String("V", "", "print version for the go command's tool cache (vettool protocol)")
		list    = fs.Bool("list", false, "print the analyzer registry and exit")
		audit   = fs.Bool("allow-audit", false, "also report well-formed //lint:allow directives that suppress no diagnostic (direct mode only)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	// `go vet -vettool` probes with -V=full before doing anything else;
	// the reply becomes part of vet's cache key, so it must be stable.
	if *version != "" {
		fmt.Fprintf(stdout, "evslint version %s\n", toolVersion)
		return 0
	}
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unitcheck(rest[0], stderr)
	}

	patterns := rest
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	check := lint.Check
	if *audit {
		// The audit needs the whole suite's diagnostics before judging a
		// waiver stale, so it only exists in direct mode — vet's
		// per-package caching would replay "unused" verdicts for
		// directives whose diagnostics were cached away.
		check = lint.CheckAudit
	}
	diags, err := check(".", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "evslint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "evslint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// toolVersion feeds vet's cache key. Bump it when analyzer behaviour
// changes, or stale "clean" verdicts will be replayed from the cache.
// 3: SSA dataflow layer — arenaesc + golife added; wireown and lockheld
// alias/blocking resolution now interprocedural.
const toolVersion = "3"

package main

import (
	"encoding/json"
	"os"
	"testing"
)

// The quick report must complete without error.
func TestQuickReport(t *testing.T) {
	if testing.Short() {
		t.Skip("report generation")
	}
	if err := run(1, true, false, "", nil); err != nil {
		t.Fatal(err)
	}
}

// The T1-only mode must complete and write the ordering metrics file.
func TestT1OnlyWritesOrderingJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("report generation")
	}
	path := t.TempDir() + "/BENCH_ordering.json"
	if err := run(1, true, true, path, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("ordering json not written: %v", err)
	}
}

// The -metrics-json scenario must emit a 16-process snapshot whose totals
// show real protocol activity: token rotations, retransmissions, batch
// fill, and a non-empty budget trajectory.
func TestMetricsJSONSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a 3s virtual scenario")
	}
	path := t.TempDir() + "/metrics.json"
	if err := runMetrics(1, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep metricsReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if rep.Procs != 16 {
		t.Fatalf("expected a 16-process snapshot, got %d", rep.Procs)
	}
	// 16 process scopes plus the "net" medium scope.
	if got := len(rep.Metrics.Procs); got != 17 {
		t.Fatalf("expected 17 scopes, got %d", got)
	}
	tot := rep.Metrics.Total
	for _, name := range []string{
		"totem_token_rotations_total",
		"totem_retrans_served_total",
		"totem_msgs_delivered_total",
	} {
		if tot.Counters[name] == 0 {
			t.Errorf("counter %s is zero in a loaded lossy scenario", name)
		}
	}
	if tot.Histograms["totem_batch_fill"].Count == 0 {
		t.Error("batch fill histogram is empty")
	}
	if len(rep.BudgetTrajectory) == 0 {
		t.Error("budget trajectory is empty: flow control never adapted")
	}
}

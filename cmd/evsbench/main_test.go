package main

import "testing"

// The quick report must complete without error.
func TestQuickReport(t *testing.T) {
	if testing.Short() {
		t.Skip("report generation")
	}
	if err := run(1, true); err != nil {
		t.Fatal(err)
	}
}

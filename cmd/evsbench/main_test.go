package main

import (
	"os"
	"testing"
)

// The quick report must complete without error.
func TestQuickReport(t *testing.T) {
	if testing.Short() {
		t.Skip("report generation")
	}
	if err := run(1, true, false, ""); err != nil {
		t.Fatal(err)
	}
}

// The T1-only mode must complete and write the ordering metrics file.
func TestT1OnlyWritesOrderingJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("report generation")
	}
	path := t.TempDir() + "/BENCH_ordering.json"
	if err := run(1, true, true, path); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("ordering json not written: %v", err)
	}
}

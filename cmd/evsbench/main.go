// Command evsbench regenerates every figure of the paper and the protocol
// characterisation series as a text report. Each section names the
// experiment from DESIGN.md; EXPERIMENTS.md records the expected shapes.
//
// Usage:
//
//	evsbench [-seed N] [-quick] [-t1] [-ordering-json FILE] [-metrics-json FILE]
//	evsbench -groups [-quick] [-groups-json FILE]
//	evsbench -wire [-quick] [-wire-json FILE]
//
// -t1 runs only the ordering-throughput section (used by CI as a smoke
// benchmark). -ordering-json additionally writes the T1 series with
// host-side cost metrics (ns/msg, B/msg, allocs/msg, packets/msg) as JSON.
// -metrics-json runs a 16-process loaded scenario (lossy network plus a
// partition/merge) and writes the cluster's full observability snapshot —
// token rotations, retransmissions, batch fill, budget trajectory — as JSON,
// skipping the report sections.
// -groups runs only the lightweight-group scale benchmark (G1): the
// 10k-group / 100k-client cluster scenario plus the binary-vs-JSON layer
// replay rig; -groups-json writes the report (BENCH_groups.json), and
// -quick shrinks it to CI smoke size.
// -wire runs only the wire codec benchmark (W1): per-kind encode/decode
// ns/op and allocs/op of the flat binary codec the real transports use,
// with the zero-alloc gate on the Data hot path; -wire-json writes the
// report (BENCH_wire.json).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	evs "repro"
	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	quick := flag.Bool("quick", false, "smaller sweeps")
	t1Only := flag.Bool("t1", false, "run only the T1 ordering section")
	procsFlag := flag.String("procs", "", "comma-separated group sizes for the T1 sweep (overrides the defaults)")
	orderingJSON := flag.String("ordering-json", "", "write T1 ordering metrics to this JSON file (empty disables)")
	metricsJSON := flag.String("metrics-json", "", "run a 16-process scenario and write its observability snapshot to this JSON file (empty disables)")
	groupsOnly := flag.Bool("groups", false, "run only the G1 lightweight-group scale benchmark")
	groupsJSON := flag.String("groups-json", "", "write the G1 groups benchmark report to this JSON file (empty disables)")
	wireOnly := flag.Bool("wire", false, "run only the W1 wire codec benchmark")
	wireJSON := flag.String("wire-json", "", "write the W1 wire codec report to this JSON file (empty disables)")
	flag.Parse()
	sizes, err := parseProcs(*procsFlag)
	if err == nil {
		if *wireOnly {
			err = runWire(*quick, *wireJSON)
		} else if *groupsOnly {
			err = runGroups(*seed, *quick, *groupsJSON)
		} else if *metricsJSON != "" {
			err = runMetrics(*seed, *metricsJSON)
		} else {
			err = run(*seed, *quick, *t1Only, *orderingJSON, sizes)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// parseProcs parses the -procs override: a comma-separated list of group
// sizes. Empty means "use the built-in sweep".
func parseProcs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("-procs: bad group size %q (want integers >= 2)", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// budgetPoint is one sample of a process's flow-control budget trajectory,
// taken from the KBudget trace events the token layer emits whenever the
// adaptive window actually changes.
type budgetPoint struct {
	AtUs   int64  `json:"at_us"`
	Proc   string `json:"proc"`
	Budget uint64 `json:"budget"`
}

// metricsReport is the -metrics-json document.
type metricsReport struct {
	Seed             int64              `json:"seed"`
	Procs            int                `json:"procs"`
	VirtualSeconds   float64            `json:"virtual_seconds"`
	Metrics          evs.ClusterMetrics `json:"metrics"`
	BudgetTrajectory []budgetPoint      `json:"budget_trajectory"`
}

func runMetrics(seed int64, jsonPath string) error {
	const procs = 16
	horizon := 3 * time.Second
	g := evs.NewGroup(evs.Options{NumProcesses: procs, Seed: seed, DropRate: 0.02})
	defer g.Close()
	ids := g.IDs()
	// Steady all-to-all traffic, interrupted by a partition/merge cycle so
	// the snapshot exercises recovery and membership counters too.
	for i, id := range ids {
		id := id
		step := time.Duration(8+i) * time.Millisecond
		for at := 200 * time.Millisecond; at < horizon; at += step {
			g.Send(at, id, []byte(fmt.Sprintf("%s@%d", id, at)), evs.Safe)
		}
	}
	g.Partition(1200*time.Millisecond, ids[:procs/2], ids[procs/2:])
	g.Merge(1900 * time.Millisecond)
	g.Run(horizon)

	rep := metricsReport{
		Seed:           seed,
		Procs:          procs,
		VirtualSeconds: horizon.Seconds(),
		Metrics:        g.Metrics(),
	}
	for _, ev := range g.ObsEvents() {
		if ev.Kind == obs.KBudget {
			rep.BudgetTrajectory = append(rep.BudgetTrajectory, budgetPoint{
				AtUs: ev.At.Microseconds(), Proc: ev.Proc, Budget: ev.A,
			})
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	tot := rep.Metrics.Total
	fmt.Printf("metrics snapshot: %d procs, %.0fs virtual\n", procs, rep.VirtualSeconds)
	fmt.Printf("  token rotations:   %d\n", tot.Counters["totem_token_rotations_total"])
	fmt.Printf("  msgs delivered:    %d\n", tot.Counters["totem_msgs_delivered_total"])
	fmt.Printf("  retrans served:    %d\n", tot.Counters["totem_retrans_served_total"])
	fmt.Printf("  budget samples:    %d\n", len(rep.BudgetTrajectory))
	fmt.Printf("=> wrote %s\n", jsonPath)
	return nil
}

// runGroups runs the G1 lightweight-group scale benchmark and prints its
// headline numbers; jsonPath (if set) receives the full report.
func runGroups(seed int64, quick bool, jsonPath string) error {
	cfg := experiments.GroupsConfig(quick)
	cfg.Seed = seed
	fmt.Println("G1     lightweight groups at scale (interned routing, binary envelopes)")
	fmt.Println("-------------------------------------------------------------")
	fmt.Printf("  cluster: %d procs, %d groups, %d clients, %.0fms window\n",
		cfg.Procs, cfg.Groups, cfg.Clients, cfg.Window.Seconds()*1000)
	rep, err := experiments.GroupsBench(cfg)
	if err != nil {
		return err
	}
	c := rep.Cluster
	fmt.Printf("  ordered group msgs/s (virtual): %.0f\n", c.GroupMsgsPerSec)
	fmt.Printf("  member deliveries: %d   client deliveries: %d   filtered: %d (%.0f%%)\n",
		c.MemberDeliveries, c.ClientDeliveries, c.Filtered, 100*c.FilteredShare)
	fmt.Printf("  ns/group-delivery: %.0f   B/group-delivery: %.0f   allocs/group-delivery: %.3f\n",
		c.NsPerGroupDelivery, c.BytesPerGroupDelivery, c.AllocsPerGroupDelivery)
	fmt.Println()
	fmt.Printf("%8s %14s %14s %12s %16s %14s\n",
		"codec", "layer msgs/s", "ns/delivery", "allocs/dlv", "ns/filter-drop", "allocs/drop")
	for _, l := range rep.Layer {
		fmt.Printf("%8s %14.0f %14.1f %12.3f %16.1f %14.3f\n",
			l.Codec, l.LayerMsgsPerSec, l.NsPerDelivery, l.AllocsPerDelivery,
			l.NsPerFilteredDrop, l.AllocsPerFilteredDrop)
	}
	fmt.Printf("=> group-layer speedup vs JSON baseline: %.1fx\n", rep.SpeedupVsJSON)
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("=> wrote %s\n", jsonPath)
	}
	return nil
}

// runWire runs the W1 wire codec benchmark: per-kind encode/decode
// ns/op and allocs/op of the flat binary codec, then the alloc gate on
// the Data hot path. A gate failure is the command's failure — CI uses
// this as the dynamic half of the wire zero-alloc enforcement pair
// (the evslint noalloc pass is the static half).
func runWire(quick bool, jsonPath string) error {
	iters := 200000
	if quick {
		iters = 20000
	}
	fmt.Println("W1     wire codec: flat binary encode/decode per message kind")
	fmt.Println("-------------------------------------------------------------")
	rep, err := experiments.WireBench(iters)
	if err != nil {
		return err
	}
	fmt.Printf("%14s %8s %12s %12s %12s %12s\n",
		"kind", "bytes", "enc ns/op", "enc allocs", "dec ns/op", "dec allocs")
	for _, r := range rep.Rows {
		fmt.Printf("%14s %8d %12.1f %12.3f %12.1f %12.3f\n",
			r.Kind, r.Bytes, r.EncodeNsOp, r.EncodeAllocs, r.DecodeNsOp, r.DecodeAllocs)
	}
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("=> wrote %s\n", jsonPath)
	}
	if err := experiments.WireAllocGate(rep); err != nil {
		return err
	}
	fmt.Println("=> wire alloc gate: data encode/decode at zero allocations per op")
	return nil
}

// orderingReport is the BENCH_ordering.json document.
type orderingReport struct {
	Seed          int64                          `json:"seed"`
	WindowSeconds float64                        `json:"window_seconds"`
	Rows          []experiments.OrderingBenchRow `json:"rows"`
}

func runT1(seed int64, sizes []int, window time.Duration, jsonPath string) error {
	fmt.Println("T1     ordering throughput vs group size (safe service)")
	fmt.Println("-------------------------------------------------------------")
	rep := orderingReport{Seed: seed, WindowSeconds: window.Seconds()}
	fmt.Printf("%8s %12s %12s %10s %12s %12s %12s %10s\n",
		"procs", "msgs/s", "rotations", "pkts/msg", "ns/msg", "B/msg", "allocs/msg", "peak evq")
	for _, n := range sizes {
		r := experiments.OrderingBench(n, seed, window)
		rep.Rows = append(rep.Rows, r)
		fmt.Printf("%8d %12.0f %12d %10.2f %12.0f %12.0f %12.2f %10d\n",
			r.GroupSize, r.MsgsPerSec, r.TokenRotations, r.PacketsPerMsg,
			r.NsPerMsg, r.BytesPerMsg, r.AllocsPerMsg, r.PeakPending)
	}
	fmt.Println()
	if jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("=> wrote %s\n\n", jsonPath)
	}
	return nil
}

func run(seed int64, quick, t1Only bool, orderingJSON string, procs []int) error {
	sizes := []int{2, 3, 5, 8, 12, 16, 24, 32}
	window := time.Second
	if quick {
		sizes = []int{2, 3, 5}
		window = 300 * time.Millisecond
	}
	if len(procs) > 0 {
		sizes = procs
	}
	if t1Only {
		return runT1(seed, sizes, window, orderingJSON)
	}

	fmt.Println("extended virtual synchrony — experiment report")
	fmt.Println("================================================")
	fmt.Println()

	// F1-F5: specification conformance.
	fmt.Println("F1-F5  specifications 1-7 (figures 1-5): checker conformance")
	fmt.Println("-------------------------------------------------------------")
	rows := experiments.Figures1to5(seed)
	fmt.Print(experiments.FormatCheckerRows(rows))
	failed := 0
	for _, r := range rows {
		if !r.Pass() {
			failed++
		}
	}
	fmt.Printf("=> %d/%d rows pass\n\n", len(rows)-failed, len(rows))

	// F6: the worked example.
	fmt.Println("F6     figure 6: partition and merge of {p,q,r} with {s,t}")
	fmt.Println("-------------------------------------------------------------")
	f6 := experiments.Figure6(seed)
	for _, id := range []evs.ProcessID{"p", "q", "r", "s", "t"} {
		fmt.Printf("  %s: ", id)
		for i, c := range f6.ConfigSeqs[id] {
			if i > 0 {
				fmt.Print(" -> ")
			}
			fmt.Print(c)
		}
		fmt.Println()
	}
	fmt.Printf("=> q,r deliver transitional {q,r} then regular {q,r,s,t}: %v\n", f6.QRTransitional)
	fmt.Printf("=> p isolated via singleton transitional configuration:   %v\n", f6.PIsolated)
	fmt.Printf("=> specification violations: %d\n\n", len(f6.Violations))

	// F7: virtual synchrony over EVS.
	fmt.Println("F7     figure 7: virtual synchrony filtered from EVS")
	fmt.Println("-------------------------------------------------------------")
	f7 := experiments.Figure7(seed)
	fmt.Printf("  EVS deliveries in minority component: %d (continued operation)\n", f7.EVSDeliveriesMinority)
	fmt.Printf("  VS  deliveries in minority component: %d (blocked by the filter)\n", f7.VSDeliveriesMinority)
	fmt.Printf("=> virtual synchrony violations (C1-C3, L1-L5): %d\n", len(f7.VSViolations))
	fmt.Printf("=> EVS specification violations:                %d\n\n", len(f7.EVSViolations))

	// T1: ordering throughput.
	if err := runT1(seed, sizes, window, orderingJSON); err != nil {
		return err
	}

	// T1b: latency.
	fmt.Println("T1b    safe vs agreed delivery latency (unloaded)")
	fmt.Println("-------------------------------------------------------------")
	fmt.Printf("%8s %12s %12s %14s\n", "procs", "agreed ms", "safe ms", "safe/agreed")
	latSizes := sizes
	if !quick {
		// The latency series retains full delivery histories; cap it at
		// the pre-sweep sizes rather than the extended T1 list.
		latSizes = []int{2, 3, 5, 8, 12, 16}
	}
	for _, n := range latSizes {
		r := experiments.Latency(n, seed, 20)
		fmt.Printf("%8d %12.3f %12.3f %14.2f\n", r.GroupSize, r.AgreedMs, r.SafeMs, r.SafeOverAgreed)
	}
	fmt.Println()

	// T2: recovery cost.
	fmt.Println("T2     recovery latency vs outstanding backlog")
	fmt.Println("-------------------------------------------------------------")
	backlogs := []int{0, 50, 200, 500, 1000}
	if quick {
		backlogs = []int{0, 50, 200}
	}
	fmt.Printf("%8s %14s %14s\n", "backlog", "recovery ms", "rebroadcasts")
	for _, b := range backlogs {
		r := experiments.RecoveryMedian(b, 5)
		fmt.Printf("%8d %14.2f %14d\n", r.Backlog, r.RecoveryMs, r.Rebroadcasts)
	}
	fmt.Println()

	// T3: availability.
	fmt.Println("T3     availability during partition: EVS vs VS (5 processes)")
	fmt.Println("-------------------------------------------------------------")
	fmt.Printf("%12s %12s %12s\n", "split", "EVS active", "VS active")
	for _, s := range []int{4, 3, 2} {
		r := experiments.Availability(s, seed)
		fmt.Printf("%7d|%1d   %11.0f%% %11.0f%%\n", r.Split, 5-r.Split, 100*r.EVSActive, 100*r.VSActive)
	}
	fmt.Println()

	// S1: checker scaling.
	fmt.Println("S1     specification checker scaling (conforming histories)")
	fmt.Println("-------------------------------------------------------------")
	series := []int{200, 1000, 4000, 10000}
	if quick {
		series = []int{200, 1000}
	}
	fmt.Printf("%8s %8s %10s %12s %12s\n", "procs", "msgs", "events", "check ms", "events/s")
	scaleRows, err := experiments.CheckerScale(4, series)
	if err != nil {
		return err
	}
	for _, r := range scaleRows {
		fmt.Printf("%8d %8d %10d %12.1f %12.0f\n", r.Procs, r.Msgs, r.Events, r.CheckMs, r.EvtPerSec)
	}
	fmt.Println()

	// P1: primary history.
	fmt.Println("P1     primary component history under churn")
	fmt.Println("-------------------------------------------------------------")
	fmt.Printf("%8s %12s %12s %12s\n", "seed", "reconfigs", "primaries", "violations")
	seeds := []int64{seed, seed + 1, seed + 2, seed + 3}
	if quick {
		seeds = seeds[:2]
	}
	for _, s := range seeds {
		r := experiments.PrimaryHistory(s)
		fmt.Printf("%8d %12d %12d %12d\n", r.Seed, r.Reconfigs, r.Primaries, r.Violations)
	}
	return nil
}

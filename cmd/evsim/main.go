// Command evsim runs named extended-virtual-synchrony scenarios and prints
// the per-process configuration and delivery traces together with the
// specification checker's verdict.
//
// Usage:
//
//	evsim [-scenario name] [-seed N] [-trace]
//
// Scenarios: figure6, partition, crash, churn.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	evs "repro"
)

func main() {
	scenario := flag.String("scenario", "figure6", "scenario: figure6 | partition | crash | churn")
	seed := flag.Int64("seed", 1, "simulation seed")
	trace := flag.Bool("trace", false, "print the full formal-model event trace")
	flag.Parse()
	if err := run(*scenario, *seed, *trace); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(name string, seed int64, trace bool) error {
	var g *evs.Group
	switch name {
	case "figure6":
		g = figure6(seed)
	case "partition":
		g = partition(seed)
	case "crash":
		g = crash(seed)
	case "churn":
		g = churn(seed)
	default:
		return fmt.Errorf("unknown scenario %q (want figure6 | partition | crash | churn)", name)
	}

	fmt.Printf("scenario %s (seed %d)\n", name, seed)
	fmt.Println("----------------------------------------------------------")
	for _, id := range g.IDs() {
		fmt.Printf("%s  configurations:\n", id)
		for _, ce := range g.ConfigEvents(id) {
			fmt.Printf("    %8.1fms  %s\n", ms(ce.Time), ce.Config)
		}
		fmt.Printf("%s  deliveries:\n", id)
		for _, d := range g.Deliveries(id) {
			fmt.Printf("    %8.1fms  %s %-7s %q in %s\n",
				ms(d.Time), d.Msg, d.Service, trunc(string(d.Payload)), d.Config.ID)
		}
	}
	if trace {
		fmt.Println("formal-model trace:")
		for _, e := range g.History() {
			fmt.Printf("    %s\n", e)
		}
	}
	violations := g.Check(true)
	fmt.Println("----------------------------------------------------------")
	fmt.Printf("specification check: %d violations\n", len(violations))
	for _, v := range violations {
		fmt.Printf("    %s\n", v)
	}
	if len(violations) > 0 {
		return fmt.Errorf("execution violates the EVS specifications")
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }

func trunc(s string) string {
	if len(s) > 16 {
		return s[:16] + "..."
	}
	return s
}

// figure6 reproduces the paper's worked example.
func figure6(seed int64) *evs.Group {
	ids := []evs.ProcessID{"p", "q", "r", "s", "t"}
	g := evs.NewGroup(evs.Options{Processes: ids, Seed: seed})
	g.Partition(0, []evs.ProcessID{"p", "q", "r"}, []evs.ProcessID{"s", "t"})
	for i := 0; i < 6; i++ {
		g.Send(time.Duration(150+i*8)*time.Millisecond, ids[i%3],
			[]byte(fmt.Sprintf("msg-%d", i)), evs.Safe)
	}
	g.Partition(300*time.Millisecond, []evs.ProcessID{"p"}, []evs.ProcessID{"q", "r", "s", "t"})
	g.Run(900 * time.Millisecond)
	return g
}

// partition splits a four-process group, runs traffic on both sides, and
// merges.
func partition(seed int64) *evs.Group {
	g := evs.NewGroup(evs.Options{NumProcesses: 4, Seed: seed})
	ids := g.IDs()
	g.Send(200*time.Millisecond, ids[0], []byte("before"), evs.Safe)
	g.Partition(300*time.Millisecond, ids[:2], ids[2:])
	g.Send(500*time.Millisecond, ids[0], []byte("left"), evs.Safe)
	g.Send(500*time.Millisecond, ids[2], []byte("right"), evs.Safe)
	g.Merge(700 * time.Millisecond)
	g.Send(1100*time.Millisecond, ids[1], []byte("after"), evs.Safe)
	g.Run(1800 * time.Millisecond)
	return g
}

// crash fails a process mid-traffic and recovers it with stable storage
// intact.
func crash(seed int64) *evs.Group {
	g := evs.NewGroup(evs.Options{NumProcesses: 3, Seed: seed})
	ids := g.IDs()
	g.Send(200*time.Millisecond, ids[0], []byte("one"), evs.Safe)
	g.Crash(300*time.Millisecond, ids[2])
	g.Send(500*time.Millisecond, ids[1], []byte("two"), evs.Safe)
	g.Recover(700*time.Millisecond, ids[2])
	g.Send(1200*time.Millisecond, ids[2], []byte("three"), evs.Safe)
	g.Run(2 * time.Second)
	return g
}

// churn stresses cascading partitions and merges.
func churn(seed int64) *evs.Group {
	g := evs.NewGroup(evs.Options{NumProcesses: 5, Seed: seed})
	ids := g.IDs()
	for i := 0; i < 20; i++ {
		g.Send(time.Duration(150+i*40)*time.Millisecond, ids[i%5],
			[]byte(fmt.Sprintf("m%d", i)), evs.Safe)
	}
	g.Partition(250*time.Millisecond, ids[:2], ids[2:])
	g.Partition(450*time.Millisecond, ids[:2], ids[2:4], ids[4:])
	g.Merge(650 * time.Millisecond)
	g.Partition(850*time.Millisecond, ids[:4], ids[4:])
	g.Merge(1050 * time.Millisecond)
	g.Run(2 * time.Second)
	return g
}

package main

import "testing"

// Every scenario must run to completion with a clean specification check.
func TestScenarios(t *testing.T) {
	for _, sc := range []string{"figure6", "partition", "crash", "churn"} {
		sc := sc
		t.Run(sc, func(t *testing.T) {
			if err := run(sc, 1, false); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestUnknownScenario(t *testing.T) {
	if err := run("nope", 1, false); err == nil {
		t.Fatal("unknown scenario must error")
	}
}

// Command evsd runs one EVS ring process over a real network transport:
// the multi-process deployment of the protocol stack that the simulator
// and in-process harnesses model. Each daemon takes the full peer list
// (including itself), joins the ring over loopback or LAN UDP (or a TCP
// mesh with -net tcp), serves Prometheus/JSON metrics and a status
// endpoint over HTTP, and traces formal-model events to a JSONL file so
// a finished run can be certified against the EVS specifications:
//
//	evsd -id p01 -peers p01=127.0.0.1:7101,p02=127.0.0.1:7102 \
//	     -trace p01.jsonl -http 127.0.0.1:8101 &
//	evsd -id p02 -peers p01=127.0.0.1:7101,p02=127.0.0.1:7102 \
//	     -trace p02.jsonl -http 127.0.0.1:8102 &
//	...
//	evsd -check p01.jsonl,p02.jsonl
//
// The -check invocation merges the per-process traces by timestamp and
// runs the specification checker over the interleaving; it exits
// non-zero if any safety clause is violated.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/daemon"
	"repro/internal/model"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("evsd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		id        = fs.String("id", "", "process identifier (required unless -check)")
		peers     = fs.String("peers", "", "comma-separated id=addr peer list, including this process")
		peersFile = fs.String("peers-file", "", "file with one id=addr per line (alternative to -peers)")
		network   = fs.String("net", "udp", "transport: udp or tcp")
		httpAddr  = fs.String("http", "", "metrics/status HTTP address (empty disables)")
		tracePath = fs.String("trace", "", "formal-model event trace output (JSONL; empty disables)")
		runFor    = fs.Duration("run", 0, "exit after this long (0: run until SIGINT/SIGTERM)")
		load      = fs.Int("load", 0, "submit this many messages once the ring is operational")
		loadSvc   = fs.String("service", "agreed", "delivery service for -load traffic: agreed or safe")
		payload   = fs.Int("payload", 64, "payload size in bytes for -load traffic")
		check     = fs.String("check", "", "certification mode: comma-separated trace files to merge and check")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *check != "" {
		return runCheck(strings.Split(*check, ","), stdout, stderr)
	}

	if *id == "" {
		fmt.Fprintln(stderr, "evsd: -id is required")
		return 2
	}
	peerMap, err := parsePeers(*peers, *peersFile)
	if err != nil {
		fmt.Fprintf(stderr, "evsd: %v\n", err)
		return 2
	}
	if _, ok := peerMap[model.ProcessID(*id)]; !ok {
		fmt.Fprintf(stderr, "evsd: peer list does not include self %q\n", *id)
		return 2
	}
	svc := model.Agreed
	switch *loadSvc {
	case "agreed":
	case "safe":
		svc = model.Safe
	default:
		fmt.Fprintf(stderr, "evsd: unknown service %q\n", *loadSvc)
		return 2
	}

	d, err := daemon.New(daemon.Config{
		Self:      model.ProcessID(*id),
		Peers:     peerMap,
		Network:   *network,
		TracePath: *tracePath,
	})
	if err != nil {
		fmt.Fprintf(stderr, "evsd: %v\n", err)
		return 1
	}
	defer d.Close()
	fmt.Fprintf(stdout, "evsd %s: %s transport on %s, %d peers\n",
		*id, *network, d.Addr(), len(peerMap))

	if *httpAddr != "" {
		addr, err := d.Serve(*httpAddr)
		if err != nil {
			fmt.Fprintf(stderr, "evsd: http: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "evsd %s: metrics on http://%s/metrics, status on /status\n", *id, addr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	var timeout <-chan time.Time
	if *runFor > 0 {
		timeout = time.After(*runFor)
	}

	if *load > 0 {
		go runLoad(d, *load, *payload, svc, stdout)
	}

	select {
	case sig := <-stop:
		fmt.Fprintf(stdout, "evsd %s: %s, shutting down\n", *id, sig)
	case <-timeout:
		fmt.Fprintf(stdout, "evsd %s: run time elapsed, shutting down\n", *id)
	}
	if err := d.Close(); err != nil {
		fmt.Fprintf(stderr, "evsd: close: %v\n", err)
		return 1
	}
	return 0
}

// runLoad waits for the ring, then submits count messages of size bytes,
// reporting throughput when the local daemon has delivered its own last
// message (a lower bound on cluster-wide delivery).
func runLoad(d *daemon.Daemon, count, size int, svc model.Service, stdout *os.File) {
	if !d.WaitOperational(nil, time.Minute) {
		fmt.Fprintf(stdout, "evsd %s: load: ring never became operational\n", d.ID())
		return
	}
	buf := make([]byte, size)
	before := d.Deliveries()
	start := time.Now()
	submitted := 0
	for submitted < count {
		if err := d.Submit(buf, svc); err != nil {
			// Backlog full: let the ring drain.
			time.Sleep(time.Millisecond)
			continue
		}
		submitted++
	}
	// Wait until the local process has delivered at least its own
	// messages (other senders' traffic only adds to the count).
	for d.Deliveries() < before+uint64(count) {
		time.Sleep(time.Millisecond)
	}
	elapsed := time.Since(start)
	fmt.Fprintf(stdout, "evsd %s: load: %d×%dB %s submitted in %v (%.0f msg/s)\n",
		d.ID(), count, size, svc, elapsed.Round(time.Millisecond),
		float64(count)/elapsed.Seconds())
}

// runCheck merges trace files and checks the EVS specifications.
func runCheck(paths []string, stdout, stderr *os.File) int {
	var clean []string
	for _, p := range paths {
		if p = strings.TrimSpace(p); p != "" {
			clean = append(clean, p)
		}
	}
	if len(clean) == 0 {
		fmt.Fprintln(stderr, "evsd: -check needs at least one trace file")
		return 2
	}
	events, err := daemon.MergeTraces(clean...)
	if err != nil {
		fmt.Fprintf(stderr, "evsd: %v\n", err)
		return 1
	}
	violations := daemon.Certify(events)
	fmt.Fprintf(stdout, "evsd check: %d events from %d traces, %d violations\n",
		len(events), len(clean), len(violations))
	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintf(stdout, "  %s: %s\n", v.Spec, v.Msg)
		}
		return 1
	}
	return 0
}

// parsePeers reads the id=addr peer list from the flag and/or file.
func parsePeers(flagVal, filePath string) (map[model.ProcessID]string, error) {
	out := make(map[model.ProcessID]string)
	add := func(entry string) error {
		entry = strings.TrimSpace(entry)
		if entry == "" || strings.HasPrefix(entry, "#") {
			return nil
		}
		id, addr, ok := strings.Cut(entry, "=")
		if !ok {
			return fmt.Errorf("bad peer entry %q (want id=addr)", entry)
		}
		out[model.ProcessID(strings.TrimSpace(id))] = strings.TrimSpace(addr)
		return nil
	}
	for _, entry := range strings.Split(flagVal, ",") {
		if err := add(entry); err != nil {
			return nil, err
		}
	}
	if filePath != "" {
		data, err := os.ReadFile(filePath)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if err := add(line); err != nil {
				return nil, err
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no peers given (use -peers or -peers-file)")
	}
	return out, nil
}

package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestParsePeers(t *testing.T) {
	got, err := parsePeers("p01=127.0.0.1:7101, p02=127.0.0.1:7102", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["p01"] != "127.0.0.1:7101" || got["p02"] != "127.0.0.1:7102" {
		t.Fatalf("parsed %v", got)
	}

	dir := t.TempDir()
	file := filepath.Join(dir, "peers")
	os.WriteFile(file, []byte("# ring\np01=127.0.0.1:7101\n\np03 = 127.0.0.1:7103\n"), 0o644)
	got, err = parsePeers("", file)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got["p03"] != "127.0.0.1:7103" {
		t.Fatalf("parsed %v", got)
	}

	if _, err := parsePeers("justanaddr", ""); err == nil {
		t.Fatal("malformed entry accepted")
	}
	if _, err := parsePeers("", ""); err == nil {
		t.Fatal("empty peer list accepted")
	}
}

// TestEvsdLoopbackSmoke drives the daemon entrypoint the way the CI
// smoke does: a 3-process ring on loopback UDP, time-boxed with -run,
// one process generating load, then -check over the merged traces.
func TestEvsdLoopbackSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second daemon run")
	}
	dir := t.TempDir()
	ids := []string{"p01", "p02", "p03"}
	var peers []string
	for _, id := range ids {
		conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			t.Fatal(err)
		}
		peers = append(peers, id+"="+conn.LocalAddr().String())
		conn.Close()
	}
	peerList := strings.Join(peers, ",")

	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()

	var wg sync.WaitGroup
	codes := make([]int, len(ids))
	var traces []string
	for i, id := range ids {
		trace := filepath.Join(dir, id+".jsonl")
		traces = append(traces, trace)
		args := []string{
			"-id", id, "-peers", peerList, "-trace", trace, "-run", "2s",
		}
		if i == 0 {
			args = append(args, "-load", "20", "-payload", "32")
		}
		wg.Add(1)
		go func(i int, args []string) {
			defer wg.Done()
			codes[i] = run(args, devnull, os.Stderr)
		}(i, args)
	}
	wg.Wait()
	for i, code := range codes {
		if code != 0 {
			t.Fatalf("%s exited %d", ids[i], code)
		}
	}

	out, err := os.CreateTemp(dir, "check-out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	if code := run([]string{"-check", strings.Join(traces, ",")}, out, os.Stderr); code != 0 {
		data, _ := os.ReadFile(out.Name())
		t.Fatalf("check exited %d:\n%s", code, data)
	}
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "0 violations") {
		t.Fatalf("check output: %s", data)
	}
	// The ring actually carried the load: some events were traced.
	if strings.Contains(string(data), " 0 events") {
		t.Fatalf("empty merged trace: %s", data)
	}
}

func TestCheckRejectsViolationFreeGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.jsonl")
	os.WriteFile(bad, []byte("not json\n"), 0o644)
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer devnull.Close()
	if code := run([]string{"-check", bad}, devnull, devnull); code == 0 {
		t.Fatal("garbage trace certified")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	devnull, _ := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	defer devnull.Close()
	cases := [][]string{
		{"-peers", "p01=1.2.3.4:1"},                       // no -id
		{"-id", "p01", "-peers", "p02=1.2.3.4:1"},         // self missing
		{"-id", "p01"},                                    // no peers
		{"-id", "p01", "-peers", "p01=x", "-service", "?"}, // bad service
	}
	for _, args := range cases {
		if code := run(args, devnull, devnull); code != 2 {
			t.Errorf("args %v: exit %d, want 2", args, code)
		}
	}
}

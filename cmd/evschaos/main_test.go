package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestRunSmallSeedRange(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos executions are slow")
	}
	err := run(config{seeds: 2, maxRuns: 50})
	if err != nil {
		t.Fatalf("seeds 1..2 should satisfy the specifications: %v", err)
	}
}

// captureRun executes run with stdout redirected to a pipe and returns
// everything it printed.
func captureRun(t *testing.T, cfg config) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(cfg)
	os.Stdout = old
	w.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), runErr
}

// TestRunParallelMatchesSerial: the worker pool must not change the
// output at all. With an injected fixed clock the timing summary is
// deterministic too, so the comparison is full byte identity — no line
// is exempt.
func TestRunParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos executions are slow")
	}
	cfg := config{
		seeds: 4, maxRuns: 50, duration: 300 * time.Millisecond,
		clock: func() time.Duration { return 0 },
	}
	serialOut, serialErr := captureRun(t, cfg)
	cfg.parallel = 4
	parallelOut, parallelErr := captureRun(t, cfg)
	if (serialErr == nil) != (parallelErr == nil) {
		t.Fatalf("exit status diverged: serial=%v parallel=%v", serialErr, parallelErr)
	}
	if serialOut != parallelOut {
		t.Fatalf("parallel output diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serialOut, parallelOut)
	}
}

// TestPrintMetricDeltas: every name in the delta table must exist in the
// obs catalog (a typo would silently render zeros forever), and the
// rendering must show changed counters while skipping all-zero rows.
func TestPrintMetricDeltas(t *testing.T) {
	known := make(map[string]bool)
	for _, n := range obs.CounterNames() {
		known[n] = true
	}
	for _, n := range deltaCounters {
		if !known[n] {
			t.Errorf("deltaCounters entry %q is not in the obs catalog", n)
		}
	}

	full := obs.Snapshot{Counters: map[string]uint64{
		"totem_token_rotations_total": 5000,
		"net_packets_dropped_total":   0,
	}}
	min := obs.Snapshot{Counters: map[string]uint64{
		"totem_token_rotations_total": 40,
		"net_packets_dropped_total":   0,
	}}
	var b strings.Builder
	printMetricDeltas(&b, full, min)
	out := b.String()
	if !strings.Contains(out, "totem_token_rotations_total") ||
		!strings.Contains(out, "5000 -> 40") {
		t.Errorf("delta table missing the changed counter:\n%s", out)
	}
	if strings.Contains(out, "net_packets_dropped_total") {
		t.Errorf("delta table should skip all-zero counters:\n%s", out)
	}
}

func TestRunRejectsEmptySeedRange(t *testing.T) {
	if err := run(config{seeds: 0}); err == nil {
		t.Fatal("an empty seed range must be an error")
	}
}

func TestSaveAndReplayRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos executions are slow")
	}
	// A passing seed saves nothing; exercise save/replay through the
	// file helpers directly with a short single-seed run.
	path := filepath.Join(t.TempDir(), "prog.json")
	if err := run(config{seed: 3, seeds: 1, maxRuns: 50,
		duration: 300 * time.Millisecond, save: path}); err != nil {
		t.Fatalf("seed 3: %v", err)
	}
	// No violation means no file was written; replay must then fail
	// loudly rather than succeed vacuously.
	if _, err := os.Stat(path); err == nil {
		t.Fatal("passing run must not save a reproducer")
	}
	if err := run(config{replay: path}); err == nil ||
		!strings.Contains(err.Error(), "evschaos") {
		t.Fatalf("replaying a missing file should fail with context, got %v", err)
	}
}

package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunSmallSeedRange(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos executions are slow")
	}
	err := run(config{seeds: 2, maxRuns: 50})
	if err != nil {
		t.Fatalf("seeds 1..2 should satisfy the specifications: %v", err)
	}
}

func TestRunRejectsEmptySeedRange(t *testing.T) {
	if err := run(config{seeds: 0}); err == nil {
		t.Fatal("an empty seed range must be an error")
	}
}

func TestSaveAndReplayRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos executions are slow")
	}
	// A passing seed saves nothing; exercise save/replay through the
	// file helpers directly with a short single-seed run.
	path := filepath.Join(t.TempDir(), "prog.json")
	if err := run(config{seed: 3, seeds: 1, maxRuns: 50,
		duration: 300 * time.Millisecond, save: path}); err != nil {
		t.Fatalf("seed 3: %v", err)
	}
	// No violation means no file was written; replay must then fail
	// loudly rather than succeed vacuously.
	if _, err := os.Stat(path); err == nil {
		t.Fatal("passing run must not save a reproducer")
	}
	if err := run(config{replay: path}); err == nil ||
		!strings.Contains(err.Error(), "evschaos") {
		t.Fatalf("replaying a missing file should fail with context, got %v", err)
	}
}

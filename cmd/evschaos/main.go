// Command evschaos drives the chaos engine: it generates seeded
// adversarial fault schedules (crash/recover storms, flapping and one-way
// partitions, targeted message-class loss, latency bursts, stable-storage
// corruption), executes each against a simulated EVS cluster, and judges
// the execution with the specification checker. On a violation it
// delta-debugs the failing schedule down to a small deterministic
// reproducer and prints it, optionally saving it as JSON for -replay.
//
// Usage:
//
//	evschaos [-seeds N] [-seed S] [-procs P] [-duration D] [-settle D]
//	         [-parallel W] [-minimize] [-save FILE] [-replay FILE]
//	         [-stream] [-soak-seconds S] [-sends N] [-check-every N]
//	         [-oracle-every K] [-bound B] [-report FILE]
//	         [-cpuprofile FILE] [-memprofile FILE] [-v]
//
// Examples:
//
//	evschaos -seeds 50                 # seeds 1..50, report violations
//	evschaos -seeds 200 -parallel 8    # soak on 8 workers
//	evschaos -seed 86 -minimize        # one seed, shrink any failure
//	evschaos -replay repro.json        # re-execute a saved reproducer
//	evschaos -stream -soak-seconds 90  # inline-certified convergence soak
//
// Executions are deterministic per seed, so -parallel changes only the
// wall-clock time: per-seed results (and their printed order) are
// identical to a serial run.
//
// -stream switches to the streaming soak (see stream.go): histories are
// certified inline by the windowed checker instead of retained, each
// seed's verdict includes the self-stabilization convergence judgment,
// and the per-seed line reports the checker's peak retained window.
//
// The exit status is non-zero if any execution violated the
// specifications (or a replayed reproducer still does, or a streaming
// seed failed to converge).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 20, "number of seeds to run (1..N); ignored with -seed or -replay")
		seed     = flag.Int64("seed", 0, "run exactly this seed instead of a range")
		procs    = flag.Int("procs", 0, "cluster size (0 = seed-dependent default)")
		duration = flag.Duration("duration", 0, "fault-injection window (0 = default 1s)")
		settle   = flag.Duration("settle", 0, "post-heal quiet period (0 = default 2.5s)")
		parallel = flag.Int("parallel", 1, "worker pool size; results stay in seed order")
		minimize = flag.Bool("minimize", false, "delta-debug failing schedules to a minimal reproducer")
		maxRuns  = flag.Int("minimize-budget", 400, "maximum executions the minimizer may spend per failure")
		save     = flag.String("save", "", "write the (minimized) failing program as JSON to this file")
		replay   = flag.String("replay", "", "replay a saved program JSON instead of generating")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file at exit")
		verbose  = flag.Bool("v", false, "print every program before running it")

		stream      = flag.Bool("stream", false, "certify inline with the streaming checker and judge convergence")
		soakSeconds = flag.Int("soak-seconds", 0, "with -stream: run seeds serially until this wall-clock budget is spent")
		sends       = flag.Int("sends", 0, "client submissions per seed (0 = default 16)")
		healEvery   = flag.Duration("heal-every", 0, "insert a full heal boundary this often (bounds fault episodes, and with them checker memory, on long runs)")
		checkEvery  = flag.Int("check-every", 4096, "with -stream: incremental certification cadence in events")
		oracleEvery = flag.Int("oracle-every", 16, "with -stream: run the reference oracle on every k-th window")
		bound       = flag.Int("bound", 8, "with -stream: post-fault configuration changes allowed before the run must be legal")
		reportFile  = flag.String("report", "", "with -stream: write the convergence report to this file (written even on failure)")
	)
	flag.Parse()

	if *stream {
		if err := runStream(streamConfig{
			seeds: *seeds, seed: *seed, procs: *procs,
			duration: *duration, settle: *settle, sends: *sends,
			healEvery:   *healEvery,
			soakSeconds: *soakSeconds,
			checkEvery:  *checkEvery, oracleEvery: *oracleEvery, bound: *bound,
			report:  *reportFile,
			verbose: *verbose,
		}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	if err := run(config{
		seeds: *seeds, seed: *seed, procs: *procs,
		duration: *duration, settle: *settle,
		parallel: *parallel,
		minimize: *minimize, maxRuns: *maxRuns,
		save: *save, replay: *replay,
		cpuProfile: *cpuProf, memProfile: *memProf,
		verbose: *verbose,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type config struct {
	seeds      int
	seed       int64
	procs      int
	duration   time.Duration
	settle     time.Duration
	parallel   int
	minimize   bool
	maxRuns    int
	save       string
	replay     string
	cpuProfile string
	memProfile string
	verbose    bool
	// clock supplies elapsed time for the trailing summary line, in the
	// obs style (a monotonic duration since some epoch). main leaves it
	// nil, which anchors a wall clock at the start of the run; tests
	// inject a fixed clock so serial and parallel output compare byte
	// for byte, timing line included.
	clock func() time.Duration
}

// seedOutcome is one seed's complete result: the text a serial run would
// have printed, whether it failed, and the (possibly minimized) failing
// program for -save.
type seedOutcome struct {
	text   string
	failed bool
	report chaos.Program
}

// runSeed executes one seed and renders its report exactly as the
// original serial loop printed it. Generation, execution and minimization
// are all deterministic in the seed, so outcomes are independent of the
// worker that computes them.
func runSeed(s int64, cfg config, gen chaos.GenConfig) seedOutcome {
	var b strings.Builder
	p := chaos.Generate(s, gen)
	if cfg.verbose {
		fmt.Fprintln(&b, p)
	}
	res := chaos.Run(p)
	if len(res.Violations) == 0 {
		fmt.Fprintf(&b, "seed %-4d ok    (%d events, %d packets, %d submissions)\n",
			s, res.Events, res.Net.Delivered, res.Harness.Submitted)
		return seedOutcome{text: b.String()}
	}
	fmt.Fprintf(&b, "seed %-4d FAIL  %d specification violation(s)\n", s, len(res.Violations))
	for _, v := range res.Violations {
		fmt.Fprintf(&b, "    %s\n", v)
	}
	report := p
	if cfg.minimize {
		report = chaos.Minimize(p, chaos.MinimizeOptions{MaxRuns: cfg.maxRuns})
		fmt.Fprintf(&b, "minimized to %d events (%d faults):\n",
			len(report.Events), report.FaultCount())
		printMetricDeltas(&b, res.Metrics, chaos.Run(report).Metrics)
	}
	fmt.Fprintln(&b, report)
	return seedOutcome{text: b.String(), failed: true, report: report}
}

// deltaCounters are the protocol counters worth comparing between a full
// failing schedule and its minimized reproducer: together they show how
// much ordering, membership and recovery work the shrink preserved.
var deltaCounters = []string{
	"totem_token_rotations_total",
	"totem_msgs_delivered_total",
	"totem_retrans_served_total",
	"node_recovery_started_total",
	"node_recovery_finished_total",
	"node_recovery_aborted_total",
	"node_configs_regular_total",
	"node_configs_transitional_total",
	"net_packets_delivered_total",
	"net_packets_dropped_total",
}

// printMetricDeltas renders the full-run versus minimized-run counter
// comparison that accompanies a minimized reproducer.
func printMetricDeltas(b *strings.Builder, full, min obs.Snapshot) {
	fmt.Fprintf(b, "metric deltas (full run -> minimized):\n")
	for _, name := range deltaCounters {
		fv, mv := full.Counters[name], min.Counters[name]
		if fv == 0 && mv == 0 {
			continue
		}
		fmt.Fprintf(b, "    %-34s %10d -> %d\n", name, fv, mv)
	}
}

func run(cfg config) error {
	clock := cfg.clock
	if clock == nil {
		start := time.Now()
		clock = func() time.Duration { return time.Since(start) }
	}
	if cfg.cpuProfile != "" {
		f, err := os.Create(cfg.cpuProfile)
		if err != nil {
			return fmt.Errorf("evschaos: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("evschaos: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if cfg.memProfile != "" {
		defer func() {
			f, err := os.Create(cfg.memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "evschaos: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "evschaos: %v\n", err)
			}
		}()
	}

	if cfg.replay != "" {
		return replayFile(cfg)
	}

	first, last := int64(1), int64(cfg.seeds)
	if cfg.seed != 0 {
		first, last = cfg.seed, cfg.seed
	}
	if last < first {
		return fmt.Errorf("evschaos: no seeds to run (-seeds %d)", cfg.seeds)
	}
	ran := last - first + 1

	gen := chaos.GenConfig{Procs: cfg.procs, Duration: cfg.duration, Settle: cfg.settle}
	workers := cfg.parallel
	if workers < 1 {
		workers = 1
	}
	if int64(workers) > ran {
		workers = int(ran)
	}

	// A worker pool over seeds; each seed's outcome arrives on its own
	// buffered channel so the main loop prints (and saves) strictly in
	// seed order, matching a serial run byte for byte.
	outcomes := make([]chan seedOutcome, ran)
	for i := range outcomes {
		outcomes[i] = make(chan seedOutcome, 1)
	}
	jobs := make(chan int64)
	for w := 0; w < workers; w++ {
		go func() {
			for s := range jobs {
				outcomes[s-first] <- runSeed(s, cfg, gen)
			}
		}()
	}
	go func() {
		for s := first; s <= last; s++ {
			jobs <- s
		}
		close(jobs)
	}()

	failures := 0
	epoch := clock()
	for s := first; s <= last; s++ {
		out := <-outcomes[s-first]
		fmt.Print(out.text)
		if !out.failed {
			continue
		}
		failures++
		if cfg.save != "" {
			if err := saveProgram(out.report, cfg.save); err != nil {
				return err
			}
			fmt.Printf("saved reproducer to %s\n", cfg.save)
		}
	}
	fmt.Printf("%d seed(s), %d failure(s), %s\n", ran, failures, (clock() - epoch).Round(time.Millisecond))
	if failures > 0 {
		return fmt.Errorf("evschaos: %d of %d schedules violated the EVS specifications", failures, ran)
	}
	return nil
}

// replayFile re-executes a saved program twice, checking both the
// specifications and the determinism of the reproducer.
func replayFile(cfg config) error {
	b, err := os.ReadFile(cfg.replay)
	if err != nil {
		return fmt.Errorf("evschaos: %w", err)
	}
	p, err := chaos.DecodeJSON(b)
	if err != nil {
		return fmt.Errorf("evschaos: %s: %w", cfg.replay, err)
	}
	fmt.Println(p)
	res, same := chaos.Replay(p)
	if !same {
		return fmt.Errorf("evschaos: program is not deterministic across replays")
	}
	fmt.Printf("replayed twice, deterministic, %d violation(s)\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Printf("    %s\n", v)
	}
	if len(res.Violations) > 0 {
		return fmt.Errorf("evschaos: replayed program violates the EVS specifications")
	}
	return nil
}

func saveProgram(p chaos.Program, path string) error {
	b, err := p.EncodeJSON()
	if err != nil {
		return fmt.Errorf("evschaos: encode program: %w", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("evschaos: %w", err)
	}
	return nil
}

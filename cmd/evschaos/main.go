// Command evschaos drives the chaos engine: it generates seeded
// adversarial fault schedules (crash/recover storms, flapping and one-way
// partitions, targeted message-class loss, latency bursts, stable-storage
// corruption), executes each against a simulated EVS cluster, and judges
// the execution with the specification checker. On a violation it
// delta-debugs the failing schedule down to a small deterministic
// reproducer and prints it, optionally saving it as JSON for -replay.
//
// Usage:
//
//	evschaos [-seeds N] [-seed S] [-procs P] [-duration D] [-settle D]
//	         [-minimize] [-save FILE] [-replay FILE] [-v]
//
// Examples:
//
//	evschaos -seeds 50                 # seeds 1..50, report violations
//	evschaos -seed 86 -minimize        # one seed, shrink any failure
//	evschaos -replay repro.json        # re-execute a saved reproducer
//
// The exit status is non-zero if any execution violated the
// specifications (or a replayed reproducer still does).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 20, "number of seeds to run (1..N); ignored with -seed or -replay")
		seed     = flag.Int64("seed", 0, "run exactly this seed instead of a range")
		procs    = flag.Int("procs", 0, "cluster size (0 = seed-dependent default)")
		duration = flag.Duration("duration", 0, "fault-injection window (0 = default 1s)")
		settle   = flag.Duration("settle", 0, "post-heal quiet period (0 = default 2.5s)")
		minimize = flag.Bool("minimize", false, "delta-debug failing schedules to a minimal reproducer")
		maxRuns  = flag.Int("minimize-budget", 400, "maximum executions the minimizer may spend per failure")
		save     = flag.String("save", "", "write the (minimized) failing program as JSON to this file")
		replay   = flag.String("replay", "", "replay a saved program JSON instead of generating")
		verbose  = flag.Bool("v", false, "print every program before running it")
	)
	flag.Parse()

	if err := run(config{
		seeds: *seeds, seed: *seed, procs: *procs,
		duration: *duration, settle: *settle,
		minimize: *minimize, maxRuns: *maxRuns,
		save: *save, replay: *replay, verbose: *verbose,
	}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

type config struct {
	seeds    int
	seed     int64
	procs    int
	duration time.Duration
	settle   time.Duration
	minimize bool
	maxRuns  int
	save     string
	replay   string
	verbose  bool
}

func run(cfg config) error {
	if cfg.replay != "" {
		return replayFile(cfg)
	}

	first, last := int64(1), int64(cfg.seeds)
	if cfg.seed != 0 {
		first, last = cfg.seed, cfg.seed
	}
	if last < first {
		return fmt.Errorf("evschaos: no seeds to run (-seeds %d)", cfg.seeds)
	}

	gen := chaos.GenConfig{Procs: cfg.procs, Duration: cfg.duration, Settle: cfg.settle}
	failures := 0
	start := time.Now()
	for s := first; s <= last; s++ {
		p := chaos.Generate(s, gen)
		if cfg.verbose {
			fmt.Println(p)
		}
		res := chaos.Run(p)
		if len(res.Violations) == 0 {
			fmt.Printf("seed %-4d ok    (%d events, %d packets, %d submissions)\n",
				s, res.Events, res.Net.Delivered, res.Harness.Submitted)
			continue
		}
		failures++
		fmt.Printf("seed %-4d FAIL  %d specification violation(s)\n", s, len(res.Violations))
		for _, v := range res.Violations {
			fmt.Printf("    %s\n", v)
		}
		report := p
		if cfg.minimize {
			report = chaos.Minimize(p, chaos.MinimizeOptions{MaxRuns: cfg.maxRuns})
			fmt.Printf("minimized to %d events (%d faults):\n",
				len(report.Events), report.FaultCount())
		}
		fmt.Println(report)
		if cfg.save != "" {
			if err := saveProgram(report, cfg.save); err != nil {
				return err
			}
			fmt.Printf("saved reproducer to %s\n", cfg.save)
		}
	}
	ran := last - first + 1
	fmt.Printf("%d seed(s), %d failure(s), %s\n", ran, failures, time.Since(start).Round(time.Millisecond))
	if failures > 0 {
		return fmt.Errorf("evschaos: %d of %d schedules violated the EVS specifications", failures, ran)
	}
	return nil
}

// replayFile re-executes a saved program twice, checking both the
// specifications and the determinism of the reproducer.
func replayFile(cfg config) error {
	b, err := os.ReadFile(cfg.replay)
	if err != nil {
		return fmt.Errorf("evschaos: %w", err)
	}
	p, err := chaos.DecodeJSON(b)
	if err != nil {
		return fmt.Errorf("evschaos: %s: %w", cfg.replay, err)
	}
	fmt.Println(p)
	res, same := chaos.Replay(p)
	if !same {
		return fmt.Errorf("evschaos: program is not deterministic across replays")
	}
	fmt.Printf("replayed twice, deterministic, %d violation(s)\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Printf("    %s\n", v)
	}
	if len(res.Violations) > 0 {
		return fmt.Errorf("evschaos: replayed program violates the EVS specifications")
	}
	return nil
}

func saveProgram(p chaos.Program, path string) error {
	b, err := p.EncodeJSON()
	if err != nil {
		return fmt.Errorf("evschaos: encode program: %w", err)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return fmt.Errorf("evschaos: %w", err)
	}
	return nil
}

// Streaming-soak mode (-stream): instead of retaining each execution's
// history and judging it post hoc, every seed runs through
// chaos.RunStream — the cluster drops its history, the spec checker
// certifies inline over a pruned window (sampling the reference oracle),
// and the verdict includes the self-stabilization judgment: after the
// last transient corruption the run must re-enter the legal-history set
// within a bounded number of configuration changes.
//
// With -soak-seconds the seed range is open-ended: seeds run serially
// from 1 until the wall-clock budget is spent (at least one always
// runs). The per-seed line reports the peak checker memory (retained
// events and bytes in the unpruned window) so a reader can confirm the
// certified-event count grows while memory stays flat. -report writes
// the full convergence report to a file — even when seeds fail — so CI
// can upload it as an artifact.
package main

import (
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/chaos"
)

// streamConfig collects the -stream mode knobs. Like config, tests
// inject clock and out; main leaves them nil for wall clock and stdout.
type streamConfig struct {
	seeds       int
	seed        int64
	procs       int
	duration    time.Duration
	settle      time.Duration
	sends       int
	healEvery   time.Duration
	soakSeconds int
	checkEvery  int
	oracleEvery int
	bound       int
	report      string
	verbose     bool
	clock       func() time.Duration
	out         io.Writer
}

// runStream executes the streaming soak serially (determinism per seed
// makes parallelism pointless for a wall-clock-budgeted mode: the set of
// seeds run would depend on scheduling). It writes the report file even
// on failure, then returns an error if any seed failed to converge.
func runStream(cfg streamConfig) error {
	out := cfg.out
	if out == nil {
		out = os.Stdout
	}
	clock := cfg.clock
	if clock == nil {
		start := time.Now()
		clock = func() time.Duration { return time.Since(start) }
	}
	budget := time.Duration(cfg.soakSeconds) * time.Second
	gen := chaos.GenConfig{
		Procs: cfg.procs, Duration: cfg.duration, Settle: cfg.settle,
		Sends: cfg.sends, HealEvery: cfg.healEvery,
	}
	sc := chaos.StreamConfig{
		CheckEvery:  cfg.checkEvery,
		OracleEvery: cfg.oracleEvery,
		Bound:       cfg.bound,
	}

	var report strings.Builder
	emit := func(format string, args ...any) {
		line := fmt.Sprintf(format, args...)
		fmt.Fprint(out, line)
		report.WriteString(line)
	}

	emit("streaming soak: check-every=%d oracle-every=%d bound=%d budget=%s\n",
		sc.CheckEvery, sc.OracleEvery, sc.Bound, budget)

	var (
		ran, failures, faulted int
		totalEvents, totalCert uint64
		peakEvents             int
		peakBytes              uint64
		epoch                  = clock()
	)
	for s := int64(1); ; s++ {
		if cfg.seed != 0 {
			s = cfg.seed
		}
		p := chaos.Generate(s, gen)
		if cfg.verbose {
			emit("%s\n", p)
		}
		res := chaos.RunStream(p, sc)
		ran++
		totalEvents += res.Events
		totalCert += res.Stream.Certified
		if res.Stream.PeakRetained > peakEvents {
			peakEvents = res.Stream.PeakRetained
		}
		if res.Stream.PeakBytes > peakBytes {
			peakBytes = res.Stream.PeakBytes
		}
		if res.LastFault > 0 {
			faulted++
		}
		emit("seed %-4d %s\n", s, res)
		if !res.Converged {
			failures++
			for _, v := range res.Violations {
				emit("    violation: %s\n", v)
			}
			for _, d := range res.Disagreements {
				emit("    disagreement: %s\n", d)
			}
		}
		if cfg.seed != 0 {
			break
		}
		if budget > 0 {
			if clock()-epoch >= budget {
				break
			}
		} else if s >= int64(cfg.seeds) {
			break
		}
	}
	emit("%d seed(s), %d not converged, %d with faults, %d events (%d certified inline), peak window %d events / %d bytes, %s\n",
		ran, failures, faulted, totalEvents, totalCert, peakEvents, peakBytes,
		(clock() - epoch).Round(time.Millisecond))

	if cfg.report != "" {
		if err := os.WriteFile(cfg.report, []byte(report.String()), 0o644); err != nil {
			return fmt.Errorf("evschaos: write report: %w", err)
		}
		fmt.Fprintf(out, "wrote convergence report to %s\n", cfg.report)
	}
	if failures > 0 {
		return fmt.Errorf("evschaos: %d of %d streaming seeds did not converge", failures, ran)
	}
	return nil
}

// Airline: the paper's first motivating application. A partitioned airline
// reservation system keeps selling tickets in every component; a
// proportional seat-allocation heuristic prevents overbooking, and ledgers
// reconcile automatically when the network remerges. The run contrasts the
// allocation heuristic with a naive optimistic policy that overbooks.
//
// Run with: go run ./examples/airline
package main

import (
	"fmt"
	"os"
	"time"

	evs "repro"
	"repro/internal/apps/airline"
	"repro/internal/model"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// office couples an airline replica to its process in the group.
type office struct {
	id      evs.ProcessID
	replica *airline.Replica
	fed     int
}

// sync replays the process's stream into the replica and broadcasts its
// reconciliation state messages.
func (o *office) sync(g *evs.Group) {
	confs := g.ConfigEvents(o.id)
	dels := g.Deliveries(o.id)
	type ev struct {
		conf    *evs.Configuration
		sender  evs.ProcessID
		payload []byte
	}
	var evts []ev
	ci, di := 0, 0
	for _, e := range g.History() {
		if e.Proc != o.id {
			continue
		}
		switch e.Type {
		case model.EventDeliverConf:
			if ci < len(confs) && confs[ci].Config.ID == e.Config {
				c := confs[ci].Config
				evts = append(evts, ev{conf: &c})
				ci++
			}
		case model.EventDeliver:
			if di < len(dels) && dels[di].Msg == e.Msg {
				evts = append(evts, ev{sender: dels[di].Msg.Sender, payload: dels[di].Payload})
				di++
			}
		}
	}
	for _, e := range evts[o.fed:] {
		if e.conf != nil {
			state, err := o.replica.OnConfig(*e.conf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: reconciliation skipped: %v\n", o.id, err)
				continue
			}
			if state != nil {
				g.Send(g.Now(), o.id, state, evs.Safe)
			}
		} else {
			o.replica.OnDeliver(e.sender, e.payload)
		}
	}
	o.fed = len(evts)
}

func sellingSeason(policy airline.Policy, seats int) (sold, over int) {
	g := evs.NewGroup(evs.Options{NumProcesses: 4, Seed: 7})
	ids := g.IDs()
	full := evs.NewProcessSet(ids...)
	offices := make([]*office, len(ids))
	for i, id := range ids {
		offices[i] = &office{id: id, replica: airline.New(id, full, policy, map[string]int{"UA100": seats})}
	}
	syncAll := func() {
		for _, o := range offices {
			o.sync(g)
		}
	}

	sell := func(at time.Duration, id evs.ProcessID) {
		b, err := airline.Encode(airline.Msg{Kind: airline.KindSell, Flight: "UA100"})
		if err != nil {
			fmt.Fprintf(os.Stderr, "sale dropped: %v\n", err)
			return
		}
		g.Send(at, id, b, evs.Safe)
	}

	// Connected selling.
	for i := 0; i < 6; i++ {
		sell(time.Duration(150+i*10)*time.Millisecond, ids[i%4])
	}
	// WAN link between the two ticket offices goes down; both keep
	// selling.
	g.Partition(300*time.Millisecond, ids[:2], ids[2:])
	for i := 0; i < 14; i++ {
		sell(time.Duration(500+i*10)*time.Millisecond, ids[0])
		sell(time.Duration(505+i*10)*time.Millisecond, ids[2])
	}
	// The link heals; drive the replicas so the post-merge
	// configuration change triggers the reconciliation exchange.
	g.Merge(800 * time.Millisecond)
	g.At(1200*time.Millisecond, syncAll)
	g.Run(2 * time.Second)
	syncAll()

	if vs := g.Check(true); len(vs) != 0 {
		fmt.Println("  (specification violations!)", vs)
	}
	return offices[0].replica.Sold("UA100"), offices[0].replica.Overbooked("UA100")
}

func run() error {
	const seats = 16
	fmt.Printf("flight UA100: %d seats, 4 ticket offices, link failure mid-season\n\n", seats)

	soldAlloc, overAlloc := sellingSeason(airline.PolicyAllocation, seats)
	fmt.Printf("allocation heuristic:  sold %2d seats, overbooked %d\n", soldAlloc, overAlloc)

	soldOpt, overOpt := sellingSeason(airline.PolicyOptimistic, seats)
	fmt.Printf("optimistic policy:     sold %2d seats, overbooked %d\n", soldOpt, overOpt)

	fmt.Println("\nthe allocation heuristic sells through the partition without")
	fmt.Println("overbooking; optimistic selling overbooks and must re-accommodate")
	fmt.Println("passengers after the merge — exactly the trade-off the paper's")
	fmt.Println("introduction describes.")
	if overAlloc != 0 {
		return fmt.Errorf("allocation heuristic overbooked")
	}
	return nil
}

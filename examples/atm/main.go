// ATM: the paper's second motivating application, contrasted across the
// two layers this library offers. Over raw extended virtual synchrony, an
// ATM cut off from the primary component keeps dispensing cash against a
// local offline limit and posts the transactions when the network heals.
// Over the virtual synchrony filter, the same ATM is blocked — the paper's
// argument for why partitionable operation matters.
//
// Run with: go run ./examples/atm
package main

import (
	"fmt"
	"os"
	"time"

	evs "repro"
	"repro/internal/apps/atm"
	"repro/internal/model"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// branch couples an ATM replica to its process.
type branch struct {
	id      evs.ProcessID
	replica *atm.Replica
	fed     int
}

// sync replays the process's app stream into the replica, broadcasting
// posting batches the replica emits on reconnection.
func (b *branch) sync(g *evs.Group) {
	confs := g.ConfigEvents(b.id)
	dels := g.Deliveries(b.id)
	type ev struct {
		conf    *evs.Configuration
		payload []byte
	}
	var evts []ev
	ci, di := 0, 0
	for _, e := range g.History() {
		if e.Proc != b.id {
			continue
		}
		switch e.Type {
		case model.EventDeliverConf:
			if ci < len(confs) && confs[ci].Config.ID == e.Config {
				c := confs[ci].Config
				evts = append(evts, ev{conf: &c})
				ci++
			}
		case model.EventDeliver:
			if di < len(dels) && dels[di].Msg == e.Msg {
				evts = append(evts, ev{payload: dels[di].Payload})
				di++
			}
		}
	}
	for _, e := range evts[b.fed:] {
		if e.conf != nil {
			batch, err := b.replica.OnConfig(*e.conf)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: posting deferred: %v\n", b.id, err)
				continue
			}
			if batch != nil {
				g.Send(g.Now(), b.id, batch, evs.Safe)
			}
		} else {
			b.replica.OnDeliver(e.payload)
		}
	}
	b.fed = len(evts)
}

func run() error {
	g := evs.NewGroup(evs.Options{NumProcesses: 3, Seed: 11, EnableVS: true})
	ids := g.IDs()
	full := evs.NewProcessSet(ids...)
	branches := make(map[evs.ProcessID]*branch)
	for _, id := range ids {
		branches[id] = &branch{id: id, replica: atm.New(id, full, map[string]int{"alice": 120}, 50)}
	}
	syncAll := func() {
		for _, id := range ids {
			branches[id].sync(g)
		}
	}
	remote := ids[2] // the branch that will be cut off

	fmt.Println("account alice: balance 120, offline limit 50 per partition")
	fmt.Println()

	// Online withdrawal while fully connected.
	g.At(200*time.Millisecond, func() {
		msg, _, err := branches[ids[0]].replica.Withdraw("alice", 40)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: withdrawal declined: %v\n", ids[0], err)
			return
		}
		if msg != nil {
			g.Send(g.Now(), ids[0], msg, evs.Safe)
		}
	})

	// The remote branch is cut off.
	g.Partition(350*time.Millisecond, ids[:2], []evs.ProcessID{remote})

	// A customer withdraws at the cut-off ATM: EVS lets the branch
	// authorise offline; the VS layer is blocked there.
	g.At(700*time.Millisecond, func() {
		syncAll()
		_, d, _ := branches[remote].replica.Withdraw("alice", 30)
		fmt.Printf("%8.0fms  %s (partitioned): offline withdrawal of 30 approved=%v\n",
			float64(g.Now().Microseconds())/1000, remote, d != nil && d.Approved)
		fmt.Printf("            VS layer at %s blocked (non-primary): %v\n",
			remote, len(g.VSEvents(remote)) == 0 || vsBlocked(g, remote))
	})

	// The network heals; the pending transaction posts.
	g.Merge(900 * time.Millisecond)
	g.At(1300*time.Millisecond, syncAll)
	g.Run(2200 * time.Millisecond)
	syncAll()

	fmt.Println()
	for _, id := range ids {
		fmt.Printf("%s: balance(alice) = %d, pending = %d, overdrafts seen = %d\n",
			id, branches[id].replica.Balance("alice"),
			branches[id].replica.PendingCount(), branches[id].replica.Overdrafts())
	}
	want := 120 - 40 - 30
	for _, id := range ids {
		if branches[id].replica.Balance("alice") != want {
			return fmt.Errorf("%s: balance %d, want %d", id, branches[id].replica.Balance("alice"), want)
		}
	}
	fmt.Printf("\nall replicas converged on balance %d after posting.\n", want)
	if vs := g.Check(true); len(vs) != 0 {
		return fmt.Errorf("specification violations: %v", vs)
	}
	if vs := g.CheckVS(true); len(vs) != 0 {
		return fmt.Errorf("virtual synchrony violations: %v", vs)
	}
	fmt.Println("EVS and VS model checks: clean.")
	return nil
}

// vsBlocked reports whether the process's VS layer saw no deliveries after
// the partition (it was blocked in the non-primary component).
func vsBlocked(g *evs.Group, id evs.ProcessID) bool {
	for _, e := range g.VSEvents(id) {
		if e.Deliver != nil && e.Time > 350*time.Millisecond && e.Time < 900*time.Millisecond {
			return false
		}
	}
	return true
}

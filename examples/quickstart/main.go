// Quickstart: a five-process extended-virtual-synchrony group that sends
// safe messages, survives a partition with continued operation in both
// components, remerges, and passes the specification checker.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"
	"time"

	evs "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	// Five processes on a simulated broadcast LAN, deterministic from
	// the seed. evs.New picks the runtime — the simulator by default;
	// evs.WithRuntime(evs.RuntimeLive) or evs.RuntimeUDP would run the
	// identical application over goroutines or real sockets. Scenario
	// control (virtual-time sends, partitions) lives on the concrete
	// simulator type, so assert to *evs.Group.
	c, err := evs.New(evs.WithNumProcesses(5), evs.WithSeed(42))
	if err != nil {
		return err
	}
	defer c.Close()
	g := c.(*evs.Group)
	ids := g.IDs()

	// Observers see application events as they happen; any number can be
	// registered and each sees every event, in registration order.
	configChanges := 0
	g.AddObserver(evs.ObserverFuncs{
		ConfigChange: func(id evs.ProcessID, c evs.ConfigEvent) { configChanges++ },
	})

	// Safe delivery: once any member delivers, every member of the
	// component has the message and will deliver it unless it fails.
	g.Send(200*time.Millisecond, ids[0], []byte("hello, group"), evs.Safe)

	// Partition 3|2. Extended virtual synchrony keeps BOTH components
	// operating: each forms its own configuration and keeps ordering
	// new messages.
	g.Partition(400*time.Millisecond, ids[:3], ids[3:])
	g.Send(700*time.Millisecond, ids[0], []byte("from the majority"), evs.Safe)
	g.Send(700*time.Millisecond, ids[3], []byte("from the minority"), evs.Safe)

	// Remerge: one configuration again.
	g.Merge(900 * time.Millisecond)
	g.Send(1400*time.Millisecond, ids[4], []byte("back together"), evs.Safe)

	g.Run(2 * time.Second)

	for _, id := range ids {
		fmt.Printf("%s delivered:\n", id)
		for _, d := range g.Deliveries(id) {
			fmt.Printf("  %8.1fms  %-20q  from %-4s in %s\n",
				float64(d.Time.Microseconds())/1000, d.Payload, d.Msg.Sender, d.Config.ID)
		}
	}

	fmt.Println("\nconfiguration history of", ids[0], "(note transitional configurations):")
	for _, ce := range g.ConfigEvents(ids[0]) {
		fmt.Printf("  %8.1fms  %s\n", float64(ce.Time.Microseconds())/1000, ce.Config)
	}

	// Every execution can be verified against the paper's formal model.
	if violations := g.Check(true); len(violations) > 0 {
		for _, v := range violations {
			fmt.Println("violation:", v)
		}
		return fmt.Errorf("execution violates extended virtual synchrony")
	}
	fmt.Println("\nspecification check: clean (specifications 1-7 hold)")

	// The observability layer quantifies what the protocol did.
	m := g.Metrics()
	fmt.Printf("\nobserved: %d configuration changes, %d token rotations, %d messages delivered\n",
		configChanges,
		m.Total.Counters["totem_token_rotations_total"],
		m.Total.Counters["totem_msgs_delivered_total"])
	return nil
}

// Chat: the process group paradigm over extended virtual synchrony. Rooms
// are named process groups multiplexed over one transport; membership
// views derive from the safe total order, so every member of a room sees
// the same sequence of joins, leaves and messages — and when the network
// partitions, each component's rooms shrink to the reachable members and
// keep working.
//
// Run with: go run ./examples/chat
package main

import (
	"fmt"
	"os"
	"time"

	evs "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	ids := []evs.ProcessID{"alice", "bob", "carol", "dave"}
	g := evs.NewGroup(evs.Options{Processes: ids, Seed: 99})
	rooms, err := evs.NewTopics(g)
	if err != nil {
		return err
	}

	// Everyone joins #general; alice and bob also share #ops.
	for i, id := range ids {
		rooms.Join(time.Duration(200+10*i)*time.Millisecond, id, "general")
	}
	rooms.Join(260*time.Millisecond, "alice", "ops")
	rooms.Join(270*time.Millisecond, "bob", "ops")

	rooms.Send(400*time.Millisecond, "alice", "general", []byte("hi all"))
	rooms.Send(420*time.Millisecond, "bob", "ops", []byte("deploy at noon"))

	// carol and dave are cut off; #general splits into two working
	// halves.
	g.Partition(500*time.Millisecond, []evs.ProcessID{"alice", "bob"}, []evs.ProcessID{"carol", "dave"})
	rooms.Send(800*time.Millisecond, "carol", "general", []byte("anyone there?"))
	rooms.Send(820*time.Millisecond, "alice", "general", []byte("ops side here"))

	g.Merge(1000 * time.Millisecond)
	rooms.Send(1500*time.Millisecond, "dave", "general", []byte("back together"))
	g.Run(2200 * time.Millisecond)

	for _, id := range ids {
		fmt.Printf("%s sees in #general:\n", id)
		for _, d := range rooms.Deliveries(id, "general") {
			fmt.Printf("   <%s> %s\n", d.Sender, d.Payload)
		}
	}
	fmt.Println()
	fmt.Printf("#ops deliveries at carol (never joined): %d\n", len(rooms.Deliveries("carol", "ops")))
	v := rooms.View("alice", "general")
	fmt.Printf("#general view after merge: %s\n", v.Members)

	if !v.Members.Equal(evs.NewProcessSet(ids...)) {
		return fmt.Errorf("post-merge room view incomplete: %v", v.Members)
	}
	if vs := g.Check(true); len(vs) != 0 {
		return fmt.Errorf("specification violations: %v", vs)
	}
	fmt.Println("specification check: clean")
	return nil
}

// Radar: the paper's third motivating application. Sensors with different
// view qualities broadcast track readings; displays fuse them and show the
// best available picture. When a partition cuts the display off from the
// best sensor, the display degrades gracefully to the best *connected*
// sensor — "it is better to display lower quality information from the
// connected sensors than to do nothing" — and recovers the full picture on
// remerge.
//
// Run with: go run ./examples/radar
package main

import (
	"fmt"
	"os"
	"time"

	evs "repro"
	"repro/internal/apps/radar"
	"repro/internal/model"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	ids := []evs.ProcessID{"display", "sense-a", "sense-b"}
	g := evs.NewGroup(evs.Options{Processes: ids, Seed: 13})
	sensors := evs.NewProcessSet("sense-a", "sense-b")
	disp := radar.NewDisplay("display", sensors)
	fine := radar.NewSensor("sense-a", 0.95) // the sensor with the best view
	coarse := radar.NewSensor("sense-b", 0.40)

	fed := 0
	syncDisplay := func() {
		confs := g.ConfigEvents("display")
		dels := g.Deliveries("display")
		type ev struct {
			conf    *evs.Configuration
			payload []byte
		}
		var evts []ev
		ci, di := 0, 0
		for _, e := range g.History() {
			if e.Proc != "display" {
				continue
			}
			switch e.Type {
			case model.EventDeliverConf:
				if ci < len(confs) && confs[ci].Config.ID == e.Config {
					c := confs[ci].Config
					evts = append(evts, ev{conf: &c})
					ci++
				}
			case model.EventDeliver:
				if di < len(dels) && dels[di].Msg == e.Msg {
					evts = append(evts, ev{payload: dels[di].Payload})
					di++
				}
			}
		}
		for _, e := range evts[fed:] {
			if e.conf != nil {
				disp.OnConfig(*e.conf)
			} else {
				disp.OnDeliver(e.payload)
			}
		}
		fed = len(evts)
	}

	report := func(sensor evs.ProcessID, r radar.Reading) {
		b, err := radar.Encode(r)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: reading dropped: %v\n", sensor, err)
			return
		}
		g.Send(g.Now(), sensor, b, evs.Agreed)
	}

	show := func(label string) {
		syncDisplay()
		best, ok := disp.Best("bogey-1")
		if !ok {
			fmt.Printf("%8.0fms  %-22s picture: BLANK\n", float64(g.Now().Microseconds())/1000, label)
			return
		}
		fmt.Printf("%8.0fms  %-22s picture: (%.1f, %.1f) from %s, quality %.2f\n",
			float64(g.Now().Microseconds())/1000, label, best.X, best.Y, best.Sensor, best.Quality)
	}

	// Both sensors track bogey-1; the display shows the fine sensor.
	g.At(200*time.Millisecond, func() {
		report("sense-a", fine.Observe("bogey-1", 10.0, 20.0))
		report("sense-b", coarse.Observe("bogey-1", 10.4, 20.6))
	})
	g.At(400*time.Millisecond, func() { show("connected") })

	// The fine sensor's link fails; the coarse sensor keeps reporting.
	g.Partition(450*time.Millisecond, []evs.ProcessID{"display", "sense-b"}, []evs.ProcessID{"sense-a"})
	g.At(700*time.Millisecond, func() {
		report("sense-b", coarse.Observe("bogey-1", 11.1, 21.2))
	})
	g.At(900*time.Millisecond, func() { show("partitioned (degraded)") })

	// Link restored: next readings from the fine sensor win again.
	g.Merge(1000 * time.Millisecond)
	g.At(1400*time.Millisecond, func() {
		report("sense-a", fine.Observe("bogey-1", 12.0, 22.0))
	})
	g.At(1700*time.Millisecond, func() { show("remerged") })
	g.Run(2 * time.Second)

	if disp.Blanks() != 0 {
		return fmt.Errorf("display blanked %d times; partitioned operation should prevent that", disp.Blanks())
	}
	if vs := g.Check(true); len(vs) != 0 {
		return fmt.Errorf("specification violations: %v", vs)
	}
	fmt.Println("\nno blank pictures during the partition; specification check clean.")
	return nil
}

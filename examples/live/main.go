// Live: the same protocol stack as the other examples, but running on real
// goroutines, channels and wall-clock timers instead of the deterministic
// simulator — four processes forming a ring, ordering concurrent traffic,
// surviving a partition and a merge in real time.
//
// Run with: go run ./examples/live
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	evs "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run() error {
	// The uniform constructor with the live runtime; partition and merge
	// control stays on the concrete *evs.LiveGroup.
	c, err := evs.New(evs.WithRuntime(evs.RuntimeLive), evs.WithNumProcesses(4))
	if err != nil {
		return err
	}
	defer c.Close()
	g := c.(*evs.LiveGroup)

	start := time.Now()
	if !g.WaitOperational(5 * time.Second) {
		return fmt.Errorf("group did not form")
	}
	ids := g.IDs()
	fmt.Printf("%-8s group %v operational\n", since(start), ids)

	// The live runtime exposes the protocol's metrics over HTTP while it
	// runs: Prometheus text at /metrics, JSON at /metrics?format=json.
	if addr, err := g.ServeMetrics("127.0.0.1:0"); err == nil {
		fmt.Printf("%-8s metrics at http://%s/metrics\n", since(start), addr)
	}

	// Four goroutines send concurrently; the ring orders them totally.
	var wg sync.WaitGroup
	for _, id := range ids {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				_ = g.Send(id, []byte(fmt.Sprintf("%s#%d", id, i)), evs.Safe)
				time.Sleep(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	for _, id := range ids {
		if !g.WaitDeliveries(id, 40, 10*time.Second) {
			return fmt.Errorf("%s delivered only %d of 40", id, len(g.Deliveries(id)))
		}
	}
	fmt.Printf("%-8s 40 concurrent messages safely delivered at all 4 processes\n", since(start))

	// All processes agree on the order.
	ref := g.Deliveries(ids[0])
	for _, id := range ids[1:] {
		ds := g.Deliveries(id)
		for i := range ref {
			if ds[i].Msg != ref[i].Msg {
				return fmt.Errorf("%s disagrees on delivery %d", id, i)
			}
		}
	}
	fmt.Printf("%-8s identical total order at every process\n", since(start))

	// Partition in real time: both halves keep working.
	g.Partition(ids[:2], ids[2:])
	fmt.Printf("%-8s partitioned %v | %v\n", since(start), ids[:2], ids[2:])
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		_ = g.Send(ids[0], []byte("left"), evs.Agreed)
		_ = g.Send(ids[2], []byte("right"), evs.Agreed)
		time.Sleep(10 * time.Millisecond)
		if has(g, ids[1], "left") && has(g, ids[3], "right") {
			break
		}
	}
	if !has(g, ids[1], "left") || !has(g, ids[3], "right") {
		return fmt.Errorf("partitioned components made no progress")
	}
	fmt.Printf("%-8s both components delivering independently\n", since(start))

	g.Merge()
	if !g.WaitOperational(10 * time.Second) {
		return fmt.Errorf("merge did not converge")
	}
	fmt.Printf("%-8s remerged into one configuration\n", since(start))

	if vs := g.Check(false); len(vs) != 0 {
		return fmt.Errorf("specification violations: %v", vs)
	}
	fmt.Printf("%-8s specification check clean\n", since(start))

	m := g.Metrics()
	fmt.Printf("%-8s %d token rotations, %d messages delivered, %d configurations installed\n",
		since(start),
		m.Total.Counters["totem_token_rotations_total"],
		m.Total.Counters["totem_msgs_delivered_total"],
		m.Total.Counters["node_configs_regular_total"])
	return nil
}

func has(g *evs.LiveGroup, id evs.ProcessID, payload string) bool {
	for _, d := range g.Deliveries(id) {
		if string(d.Payload) == payload {
			return true
		}
	}
	return false
}

func since(t time.Time) string {
	return fmt.Sprintf("[%.2fs]", time.Since(t).Seconds())
}

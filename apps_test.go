package evs

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/apps/airline"
	"repro/internal/apps/atm"
	"repro/internal/apps/radar"
	"repro/internal/model"
)

// appEvent is one entry of a process's app-facing stream.
type appEvent struct {
	conf    *Configuration
	msg     MessageID
	payload []byte
}

// mergedStream reconstructs a process's app-facing event order — its
// configuration changes interleaved with its application deliveries — from
// the group's recorded history.
func mergedStream(g *Group, id ProcessID) []appEvent {
	var out []appEvent
	confs := g.ConfigEvents(id)
	dels := g.Deliveries(id)
	ci, di := 0, 0
	for _, e := range g.History() {
		if e.Proc != id {
			continue
		}
		switch e.Type {
		case model.EventDeliverConf:
			if ci < len(confs) && confs[ci].Config.ID == e.Config {
				c := confs[ci].Config
				out = append(out, appEvent{conf: &c})
				ci++
			}
		case model.EventDeliver:
			// Deliveries consumed by the primary layer are not in
			// the app stream; match by message identifier.
			if di < len(dels) && dels[di].Msg == e.Msg {
				out = append(out, appEvent{msg: dels[di].Msg, payload: dels[di].Payload})
				di++
			}
		}
	}
	return out
}

// feedAirline replays a process's stream into its airline replica from the
// given offset, broadcasting the replica's reconciliation state messages.
// It returns the new offset.
func feedAirline(t *testing.T, g *Group, id ProcessID, r *airline.Replica, from int) int {
	t.Helper()
	evts := mergedStream(g, id)
	for _, e := range evts[from:] {
		if e.conf != nil {
			state, err := r.OnConfig(*e.conf)
			if err != nil {
				t.Fatalf("%s: OnConfig: %v", id, err)
			}
			if state != nil {
				g.submit(id, state, Safe)
			}
		} else {
			r.OnDeliver(e.msg.Sender, e.payload)
		}
	}
	return len(evts)
}

// mustEncodeAirline fails the test on an encoding error.
func mustEncodeAirline(t *testing.T, m airline.Msg) []byte {
	t.Helper()
	b, err := airline.Encode(m)
	if err != nil {
		t.Fatalf("airline encode: %v", err)
	}
	return b
}

// mustEncodeRadar fails the test on an encoding error.
func mustEncodeRadar(t *testing.T, r radar.Reading) []byte {
	t.Helper()
	b, err := radar.Encode(r)
	if err != nil {
		t.Fatalf("radar encode: %v", err)
	}
	return b
}

func TestAirlineOverEVSAllocationNeverOverbooks(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 4, Seed: 21})
	ids := g.IDs()
	full := NewProcessSet(ids...)
	replicas := make(map[ProcessID]*airline.Replica)
	for _, id := range ids {
		replicas[id] = airline.New(id, full, airline.PolicyAllocation, map[string]int{"F1": 12})
	}
	offsets := make(map[ProcessID]int)
	feedAll := func() {
		for _, id := range ids {
			offsets[id] = feedAirline(t, g, id, replicas[id], offsets[id])
		}
	}

	// Pre-partition sales.
	for i := 0; i < 4; i++ {
		g.Send(time.Duration(150+10*i)*time.Millisecond, ids[i%4],
			mustEncodeAirline(t, airline.Msg{Kind: airline.KindSell, Flight: "F1"}), Safe)
	}
	g.Partition(300*time.Millisecond, ids[:2], ids[2:])
	// Heavy selling in both components.
	for i := 0; i < 10; i++ {
		g.Send(time.Duration(500+10*i)*time.Millisecond, ids[0],
			mustEncodeAirline(t, airline.Msg{Kind: airline.KindSell, Flight: "F1"}), Safe)
		g.Send(time.Duration(500+10*i)*time.Millisecond, ids[2],
			mustEncodeAirline(t, airline.Msg{Kind: airline.KindSell, Flight: "F1"}), Safe)
	}
	g.Merge(800 * time.Millisecond)
	// Drive the replicas mid-run so the post-merge configuration change
	// triggers their reconciliation broadcasts.
	g.At(1200*time.Millisecond, feedAll)
	g.Run(2 * time.Second)
	feedAll()

	for _, id := range ids {
		r := replicas[id]
		if over := r.Overbooked("F1"); over != 0 {
			t.Fatalf("%s: allocation policy overbooked %d seats", id, over)
		}
	}
	// All replicas agree after reconciliation.
	ref := replicas[ids[0]].Sold("F1")
	if ref == 0 {
		t.Fatal("no sales recorded")
	}
	for _, id := range ids[1:] {
		if replicas[id].Sold("F1") != ref {
			t.Fatalf("%s sold %d, %s sold %d: replicas diverged",
				ids[0], ref, id, replicas[id].Sold("F1"))
		}
	}
	requireCleanGroup(t, g, true)
}

func TestATMOverEVSOfflinePostsOnReconnect(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 3, Seed: 22})
	ids := g.IDs()
	full := NewProcessSet(ids...)
	replicas := make(map[ProcessID]*atm.Replica)
	for _, id := range ids {
		replicas[id] = atm.New(id, full, map[string]int{"acct": 100}, 40)
	}

	// Online withdrawal while fully connected.
	g.At(200*time.Millisecond, func() {
		msg, _, err := replicas[ids[0]].Withdraw("acct", 30)
		if err != nil {
			t.Errorf("withdraw: %v", err)
		}
		if msg != nil {
			g.submit(ids[0], msg, Safe)
		}
	})
	g.Partition(300*time.Millisecond, ids[:1], ids[1:])
	fed := make(map[ProcessID]int)
	// Offline withdrawal in the singleton component; post on merge.
	g.At(600*time.Millisecond, func() {
		// Feed the replica its view of the world so it knows it is
		// partitioned, then withdraw offline.
		fed[ids[0]] = feedATM(t, g, ids[0], replicas[ids[0]], 0)
		_, d, _ := replicas[ids[0]].Withdraw("acct", 25)
		if d == nil || !d.Approved || !d.Offline {
			t.Errorf("offline withdrawal decision %+v", d)
		}
	})
	g.Merge(800 * time.Millisecond)
	g.At(1200*time.Millisecond, func() {
		// On reconnection the replica posts its pending batch.
		batch := feedATM(t, g, ids[0], replicas[ids[0]], fed[ids[0]])
		fed[ids[0]] = batch
	})
	g.Run(2 * time.Second)
	for _, id := range ids {
		feedATM(t, g, id, replicas[id], fed[id])
	}

	for _, id := range ids {
		if got := replicas[id].Balance("acct"); got != 45 {
			t.Fatalf("%s balance %d, want 45 (100-30 online -25 posted)", id, got)
		}
	}
	requireCleanGroup(t, g, true)
}

// feedATM replays a process's stream into its ATM replica from the given
// offset, broadcasting any posting batch the replica produces. It returns
// the new offset.
func feedATM(t *testing.T, g *Group, id ProcessID, r *atm.Replica, from int) int {
	t.Helper()
	evts := mergedStream(g, id)
	for _, e := range evts[from:] {
		if e.conf != nil {
			batch, err := r.OnConfig(*e.conf)
			if err != nil {
				t.Fatalf("%s: OnConfig: %v", id, err)
			}
			if batch != nil {
				g.submit(id, batch, Safe)
			}
		} else {
			r.OnDeliver(e.payload)
		}
	}
	return len(evts)
}

func TestRadarOverEVSDegradesUnderPartition(t *testing.T) {
	ids := []ProcessID{"d1", "s1", "s2"}
	g := NewGroup(Options{Processes: ids, Seed: 23})
	sensors := NewProcessSet("s1", "s2")
	display := radar.NewDisplay("d1", sensors)
	good := radar.NewSensor("s1", 0.9)
	poor := radar.NewSensor("s2", 0.4)

	g.Send(200*time.Millisecond, "s1", mustEncodeRadar(t, good.Observe("T1", 10, 10)), Agreed)
	g.Send(210*time.Millisecond, "s2", mustEncodeRadar(t, poor.Observe("T1", 10.5, 10.5)), Agreed)
	// The best sensor partitions away.
	g.Partition(400*time.Millisecond, []ProcessID{"d1", "s2"}, []ProcessID{"s1"})
	g.Send(600*time.Millisecond, "s2", mustEncodeRadar(t, poor.Observe("T1", 11, 11)), Agreed)
	g.Run(time.Second)

	for _, e := range mergedStream(g, "d1") {
		if e.conf != nil {
			display.OnConfig(*e.conf)
		} else {
			display.OnDeliver(e.payload)
		}
	}
	best, ok := display.Best("T1")
	if !ok {
		t.Fatal("display blanked although s2 is connected")
	}
	if best.Sensor != "s2" {
		t.Fatalf("best sensor %s, want degraded s2", best.Sensor)
	}
	if best.X != 11 {
		t.Fatalf("best reading %v, want the fresh partitioned reading", best.X)
	}
	requireCleanGroup(t, g, true)
}

func TestMergedStreamOrdersConfsAndDeliveries(t *testing.T) {
	g := NewGroup(Options{NumProcesses: 3, Seed: 24})
	ids := g.IDs()
	g.Send(200*time.Millisecond, ids[0], []byte("x"), Safe)
	g.Run(600 * time.Millisecond)
	evts := mergedStream(g, ids[1])
	if len(evts) < 2 {
		t.Fatalf("stream %v", evts)
	}
	if evts[0].conf == nil {
		t.Fatal("first event must be a configuration change")
	}
	foundDelivery := false
	for _, e := range evts {
		if e.conf == nil && string(e.payload) == "x" {
			foundDelivery = true
		}
	}
	if !foundDelivery {
		t.Fatal("delivery missing from merged stream")
	}
	_ = fmt.Sprint(evts)
}

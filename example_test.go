package evs_test

import (
	"fmt"
	"time"

	evs "repro"
)

// The basic flow: create a group, send a safe message, run, read
// deliveries, verify the execution against the formal model.
func Example() {
	g := evs.NewGroup(evs.Options{NumProcesses: 3, Seed: 7})
	ids := g.IDs()
	g.Send(200*time.Millisecond, ids[0], []byte("hello"), evs.Safe)
	g.Run(time.Second)

	d := g.Deliveries(ids[1])[0]
	fmt.Printf("%s delivered %q from %s\n", ids[1], d.Payload, d.Msg.Sender)
	fmt.Printf("violations: %d\n", len(g.Check(true)))
	// Output:
	// p02 delivered "hello" from p01
	// violations: 0
}

// Partitioned operation: both components of a split network keep
// delivering — the property that distinguishes extended virtual synchrony
// from the primary-partition model.
func Example_partition() {
	g := evs.NewGroup(evs.Options{NumProcesses: 4, Seed: 8})
	ids := g.IDs()
	g.Partition(300*time.Millisecond, ids[:2], ids[2:])
	g.Send(600*time.Millisecond, ids[0], []byte("left"), evs.Safe)
	g.Send(600*time.Millisecond, ids[2], []byte("right"), evs.Safe)
	g.Run(1200 * time.Millisecond)

	fmt.Printf("left side delivered:  %s\n", g.Deliveries(ids[1])[0].Payload)
	fmt.Printf("right side delivered: %s\n", g.Deliveries(ids[3])[0].Payload)
	// Output:
	// left side delivered:  left
	// right side delivered: right
}

// The virtual synchrony layer: the Section 5 filter blocks non-primary
// components, recovering Birman's model on top of EVS.
func Example_virtualSynchrony() {
	g := evs.NewGroup(evs.Options{NumProcesses: 5, Seed: 9, EnableVS: true})
	ids := g.IDs()
	g.Partition(300*time.Millisecond, ids[:3], ids[3:])
	g.Send(800*time.Millisecond, ids[0], []byte("majority"), evs.Safe)
	g.Send(800*time.Millisecond, ids[3], []byte("minority"), evs.Safe)
	g.Run(1500 * time.Millisecond)

	evsMinority := len(g.Deliveries(ids[4]))
	vsMinority := 0
	for _, e := range g.VSEvents(ids[4]) {
		if e.Deliver != nil {
			vsMinority++
		}
	}
	fmt.Printf("EVS delivers in the minority component: %v\n", evsMinority > 0)
	fmt.Printf("VS blocks the minority component:       %v\n", vsMinority == 0)
	fmt.Printf("VS model violations: %d\n", len(g.CheckVS(true)))
	// Output:
	// EVS delivers in the minority component: true
	// VS blocks the minority component:       true
	// VS model violations: 0
}

// Named process groups over one transport.
func ExampleTopics() {
	g := evs.NewGroup(evs.Options{NumProcesses: 3, Seed: 10})
	rooms, _ := evs.NewTopics(g)
	ids := g.IDs()
	rooms.Join(200*time.Millisecond, ids[0], "chat")
	rooms.Join(210*time.Millisecond, ids[1], "chat")
	rooms.Send(400*time.Millisecond, ids[0], "chat", []byte("hi"))
	g.Run(time.Second)

	fmt.Printf("member got: %s\n", rooms.Deliveries(ids[1], "chat")[0].Payload)
	fmt.Printf("non-member got: %d messages\n", len(rooms.Deliveries(ids[2], "chat")))
	fmt.Printf("view: %s\n", rooms.View(ids[0], "chat").Members)
	// Output:
	// member got: hi
	// non-member got: 0 messages
	// view: {p01,p02}
}

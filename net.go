package evs

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/daemon"
	"repro/internal/model"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/spec"
)

// NetGroup is an EVS cluster over real sockets: one daemon per process
// (the same unit cmd/evsd deploys one-per-OS-process), all in this
// process, talking UDP or TCP through the loopback interface. It is the
// third runtime behind the Cluster interface — after the deterministic
// simulator (Group) and the in-process hub (LiveGroup) — and the one
// whose messages actually cross the kernel's network stack: every
// broadcast is encoded by the wire codec, framed, and read back off a
// socket.
type NetGroup struct {
	ids     []ProcessID
	daemons map[ProcessID]*daemon.Daemon
	start   time.Time

	mu         sync.Mutex
	deliveries map[ProcessID][]Delivery
	confs      map[ProcessID][]ConfigEvent
	trace      []timedNetEvent
	observers  []Observer
	killed     map[ProcessID]bool
}

type timedNetEvent struct {
	t int64
	e Event
}

var _ Cluster = (*NetGroup)(nil)

// NewNetGroup starts n daemons named p01..pNN on loopback with the given
// network ("udp" or "tcp"). nodeCfg overrides protocol timing (nil: the
// deployment profile, daemon.DefaultNetConfig). Call Close when done.
func NewNetGroup(n int, network string, nodeCfg *node.Config) (*NetGroup, error) {
	if n <= 0 {
		n = 3
	}
	var ids []ProcessID
	for i := 0; i < n; i++ {
		ids = append(ids, ProcessID(fmt.Sprintf("p%02d", i+1)))
	}
	addrs, err := reserveLoopback(ids, network)
	if err != nil {
		return nil, err
	}
	g := &NetGroup{
		ids:        ids,
		daemons:    make(map[ProcessID]*daemon.Daemon, n),
		start:      time.Now(),
		deliveries: make(map[ProcessID][]Delivery),
		confs:      make(map[ProcessID][]ConfigEvent),
		killed:     make(map[ProcessID]bool),
	}
	for _, id := range ids {
		id := id
		d, err := daemon.New(daemon.Config{
			Self:    id,
			Peers:   addrs,
			Network: network,
			Node:    nodeCfg,
			OnDeliver: func(del node.Delivery) {
				g.onDeliver(id, del)
			},
			OnConfig: func(c node.ConfigChange) {
				g.onConfig(id, c)
			},
			TraceSink: func(t int64, e model.Event) {
				g.onTrace(t, e)
			},
		})
		if err != nil {
			g.Close()
			return nil, err
		}
		g.daemons[id] = d
	}
	return g, nil
}

// reserveLoopback binds and releases a loopback port per process.
func reserveLoopback(ids []ProcessID, network string) (map[model.ProcessID]string, error) {
	addrs := make(map[model.ProcessID]string, len(ids))
	for _, id := range ids {
		switch network {
		case "", "udp":
			conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
			if err != nil {
				return nil, fmt.Errorf("reserve udp port: %w", err)
			}
			addrs[id] = conn.LocalAddr().String()
			conn.Close()
		case "tcp":
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return nil, fmt.Errorf("reserve tcp port: %w", err)
			}
			addrs[id] = ln.Addr().String()
			ln.Close()
		default:
			return nil, fmt.Errorf("unknown network %q", network)
		}
	}
	return addrs, nil
}

func (g *NetGroup) onDeliver(id ProcessID, d node.Delivery) {
	payload := d.Payload
	if len(payload) > 0 && payload[0] == tagApp {
		payload = payload[1:]
	}
	del := Delivery{
		Msg:     d.Msg,
		Payload: payload,
		Service: d.Service,
		Config:  d.Config,
		Time:    time.Since(g.start),
	}
	g.mu.Lock()
	g.deliveries[id] = append(g.deliveries[id], del)
	obsvs := g.observers
	g.mu.Unlock()
	for _, o := range obsvs {
		o.OnDelivery(id, del)
	}
}

func (g *NetGroup) onConfig(id ProcessID, c node.ConfigChange) {
	ce := ConfigEvent{Config: c.Config, Time: time.Since(g.start)}
	g.mu.Lock()
	g.confs[id] = append(g.confs[id], ce)
	obsvs := g.observers
	g.mu.Unlock()
	for _, o := range obsvs {
		o.OnConfigChange(id, ce)
	}
}

func (g *NetGroup) onTrace(t int64, e Event) {
	g.mu.Lock()
	g.trace = append(g.trace, timedNetEvent{t: t, e: e})
	g.mu.Unlock()
}

// IDs returns the process identifiers.
func (g *NetGroup) IDs() []ProcessID {
	out := make([]ProcessID, len(g.ids))
	copy(out, g.ids)
	return out
}

// Submit originates an application message at a process.
func (g *NetGroup) Submit(id ProcessID, payload []byte, svc Service) error {
	d, ok := g.daemons[id]
	if !ok {
		return fmt.Errorf("unknown process %s", id)
	}
	wrapped := append([]byte{tagApp}, payload...)
	return d.Submit(wrapped, svc)
}

// Deliveries returns a snapshot of the messages delivered at a process.
func (g *NetGroup) Deliveries(id ProcessID) []Delivery {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Delivery, len(g.deliveries[id]))
	copy(out, g.deliveries[id])
	return out
}

// ConfigChanges returns a snapshot of the configuration changes
// delivered at a process.
func (g *NetGroup) ConfigChanges(id ProcessID) []ConfigEvent {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]ConfigEvent, len(g.confs[id]))
	copy(out, g.confs[id])
	return out
}

// History returns the formal-model trace so far, merged across the
// daemons by wall-clock timestamp (the same interleaving -check builds
// from per-process trace files).
func (g *NetGroup) History() []Event {
	g.mu.Lock()
	evs := make([]timedNetEvent, len(g.trace))
	copy(evs, g.trace)
	g.mu.Unlock()
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].t < evs[j].t })
	out := make([]Event, len(evs))
	for i, te := range evs {
		out[i] = te.e
	}
	return out
}

// Check verifies the recorded execution against the EVS specifications.
// Settledness is the caller's claim that traffic has stopped and the
// ring was given time to drain.
func (g *NetGroup) Check(settled bool) []Violation {
	return spec.NewChecker(g.History(), spec.Options{Settled: settled}).CheckAll()
}

// Metrics freezes every daemon's observability scope into one snapshot.
func (g *NetGroup) Metrics() ClusterMetrics {
	scopes := make([]*obs.Metrics, 0, len(g.ids))
	for _, id := range g.ids {
		if d, ok := g.daemons[id]; ok {
			scopes = append(scopes, d.Metrics())
		}
	}
	return obs.Cluster(scopes...)
}

// AddObserver registers an application-event observer. Callbacks run on
// daemon protocol goroutines: per-process order holds, cross-process
// callbacks are concurrent, and the observer must synchronise its state.
func (g *NetGroup) AddObserver(o Observer) {
	if o == nil {
		return
	}
	g.mu.Lock()
	g.observers = append(g.observers, o)
	g.mu.Unlock()
}

// Kill abruptly stops one daemon: its sockets close and it goes silent,
// with no protocol goodbye and no Fail event — the in-process equivalent
// of SIGKILL. The survivors detect the loss and reform.
func (g *NetGroup) Kill(id ProcessID) error {
	d, ok := g.daemons[id]
	if !ok {
		return fmt.Errorf("unknown process %s", id)
	}
	g.mu.Lock()
	g.killed[id] = true
	g.mu.Unlock()
	return d.Close()
}

// WaitOperational blocks until every (non-killed) daemon is operational
// with the same membership view, or the timeout elapses; reports success.
func (g *NetGroup) WaitOperational(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if g.operationalTogether() {
			return true
		}
		if time.Now().After(deadline) {
			return g.operationalTogether()
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (g *NetGroup) operationalTogether() bool {
	g.mu.Lock()
	killed := make(map[ProcessID]bool, len(g.killed))
	for id, k := range g.killed {
		killed[id] = k
	}
	g.mu.Unlock()
	var ref Status
	first := true
	for _, id := range g.ids {
		if killed[id] {
			continue
		}
		st := g.daemons[id].Status()
		if st.Mode != "operational" {
			return false
		}
		if first {
			ref, first = st, false
		} else if st.Config != ref.Config {
			return false
		}
	}
	return !first
}

// Status is re-exported from the daemon package for NetGroup users.
type Status = daemon.Status

// ProcStatus snapshots one daemon's protocol state.
func (g *NetGroup) ProcStatus(id ProcessID) Status {
	return g.daemons[id].Status()
}

// WaitDeliveries blocks until process id has delivered at least n
// application messages or the timeout elapses; reports success.
func (g *NetGroup) WaitDeliveries(id ProcessID, n int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		if len(g.Deliveries(id)) >= n {
			return true
		}
		if time.Now().After(deadline) {
			return len(g.Deliveries(id)) >= n
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close stops every daemon. Idempotent.
func (g *NetGroup) Close() error {
	var first error
	for _, id := range g.ids {
		if d, ok := g.daemons[id]; ok {
			if err := d.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}
